// Package taxonomy implements the product classification taxonomy C of the
// paper's information model (§3.1): a rooted acyclic graph of topics with a
// single top element ⊤, arranged by a partial subset order similar to class
// hierarchies in object-oriented languages.
//
// Topics are identified by dense integer handles (Topic) for speed; every
// topic also carries a human-readable name and a path-like qualified name
// ("Books/Science/Mathematics/Pure/Algebra"). The package provides the
// primitives the taxonomy-based profile generator needs: parent/children
// access, sibling counts, root paths, depth, and leaf tests.
//
// While the paper allows a general DAG, its Eq. 3 propagation "supposes C
// tree-structured" for score assignment. We support multiple parents in the
// structure (AddEdge) but expose PrimaryPath, which follows each topic's
// first-added (primary) parent, matching the paper's simplification. All
// shape statistics used in experiment E8 are exported via Stats.
package taxonomy

import (
	"errors"
	"fmt"
	"sort"
	"strings"
)

// Topic is a dense handle into a Taxonomy. The root (top element ⊤) is
// always Topic 0.
type Topic int32

// Root is the top element ⊤ of every taxonomy: the most general topic with
// zero indegree (§3.1).
const Root Topic = 0

// None marks the absence of a topic (e.g. the parent of Root).
const None Topic = -1

var (
	// ErrUnknownTopic is returned when a handle or name does not resolve.
	ErrUnknownTopic = errors.New("taxonomy: unknown topic")
	// ErrCycle is returned when an edge insertion would create a cycle.
	ErrCycle = errors.New("taxonomy: edge would create a cycle")
	// ErrDuplicate is returned when a topic name is registered twice under
	// the same parent.
	ErrDuplicate = errors.New("taxonomy: duplicate topic")
)

// node is the internal representation of one topic.
type node struct {
	name     string  // leaf name, e.g. "Algebra"
	parents  []Topic // first entry is the primary parent
	children []Topic
}

// Taxonomy is the global classification scheme. It is not safe for
// concurrent mutation; concurrent reads are safe once construction is done.
type Taxonomy struct {
	nodes   []node
	byPath  map[string]Topic // qualified name -> topic
	version uint64           // bumped by every structural mutation
}

// New creates a taxonomy containing only the top element, named rootName
// (the paper uses "Books" for the Amazon book taxonomy fragment).
func New(rootName string) *Taxonomy {
	t := &Taxonomy{
		nodes:  []node{{name: rootName, parents: nil}},
		byPath: map[string]Topic{rootName: Root},
	}
	return t
}

// Len returns the number of topics including the root.
func (t *Taxonomy) Len() int { return len(t.nodes) }

// Version returns a counter that changes with every structural mutation
// (Add, AddEdge). Derived structures computed from a frozen taxonomy —
// e.g. the profile generator's flattened propagation tables — key their
// caches on it to detect staleness.
func (t *Taxonomy) Version() uint64 { return t.version }

// Name returns the local (unqualified) name of a topic.
func (t *Taxonomy) Name(d Topic) string {
	if !t.valid(d) {
		return ""
	}
	return t.nodes[d].name
}

// QualifiedName returns the full path name from the root, joined by "/".
func (t *Taxonomy) QualifiedName(d Topic) string {
	if !t.valid(d) {
		return ""
	}
	path := t.PrimaryPath(d)
	parts := make([]string, len(path))
	for i, p := range path {
		parts[i] = t.nodes[p].name
	}
	return strings.Join(parts, "/")
}

// valid reports whether d is a live handle.
func (t *Taxonomy) valid(d Topic) bool { return d >= 0 && int(d) < len(t.nodes) }

// Add registers a new topic under the given parent and returns its handle.
// The parent becomes the topic's primary parent. Sibling names must be
// unique so that qualified names identify topics.
func (t *Taxonomy) Add(parent Topic, name string) (Topic, error) {
	if !t.valid(parent) {
		return None, fmt.Errorf("%w: parent %d", ErrUnknownTopic, parent)
	}
	if name == "" || strings.Contains(name, "/") {
		return None, fmt.Errorf("taxonomy: invalid topic name %q", name)
	}
	qname := t.QualifiedName(parent) + "/" + name
	if _, ok := t.byPath[qname]; ok {
		return None, fmt.Errorf("%w: %s", ErrDuplicate, qname)
	}
	d := Topic(len(t.nodes))
	t.nodes = append(t.nodes, node{name: name, parents: []Topic{parent}})
	t.nodes[parent].children = append(t.nodes[parent].children, d)
	t.byPath[qname] = d
	t.version++
	return d, nil
}

// MustAdd is Add for construction code with static names; it panics on error.
func (t *Taxonomy) MustAdd(parent Topic, name string) Topic {
	d, err := t.Add(parent, name)
	if err != nil {
		panic(err)
	}
	return d
}

// AddPath ensures every topic along the "/"-separated path below the root
// exists, creating missing ones, and returns the final topic. The path must
// not include the root name.
func (t *Taxonomy) AddPath(path string) (Topic, error) {
	cur := Root
	for _, part := range strings.Split(path, "/") {
		if part == "" {
			return None, fmt.Errorf("taxonomy: empty path segment in %q", path)
		}
		next, ok := t.Child(cur, part)
		if !ok {
			var err error
			next, err = t.Add(cur, part)
			if err != nil {
				return None, err
			}
		}
		cur = next
	}
	return cur, nil
}

// AddEdge records an additional (secondary) parent for d, turning the tree
// into a DAG. Secondary parents participate in Ancestors but not in
// PrimaryPath. The edge is rejected if it would create a cycle.
func (t *Taxonomy) AddEdge(parent, d Topic) error {
	if !t.valid(parent) || !t.valid(d) {
		return ErrUnknownTopic
	}
	if d == Root {
		return fmt.Errorf("taxonomy: root cannot have a parent")
	}
	if t.reachable(d, parent) {
		return fmt.Errorf("%w: %s -> %s", ErrCycle, t.Name(parent), t.Name(d))
	}
	for _, p := range t.nodes[d].parents {
		if p == parent {
			return nil // idempotent
		}
	}
	t.nodes[d].parents = append(t.nodes[d].parents, parent)
	t.nodes[parent].children = append(t.nodes[parent].children, d)
	t.version++
	return nil
}

// reachable reports whether to can be reached from from by child edges.
func (t *Taxonomy) reachable(from, to Topic) bool {
	if from == to {
		return true
	}
	stack := []Topic{from}
	seen := map[Topic]bool{from: true}
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, c := range t.nodes[cur].children {
			if c == to {
				return true
			}
			if !seen[c] {
				seen[c] = true
				stack = append(stack, c)
			}
		}
	}
	return false
}

// Lookup resolves a qualified name (including the root name) to a topic.
func (t *Taxonomy) Lookup(qualified string) (Topic, bool) {
	d, ok := t.byPath[qualified]
	return d, ok
}

// Child returns the direct child of parent with the given local name.
func (t *Taxonomy) Child(parent Topic, name string) (Topic, bool) {
	if !t.valid(parent) {
		return None, false
	}
	for _, c := range t.nodes[parent].children {
		if t.nodes[c].name == name && t.nodes[c].parents[0] == parent {
			return c, true
		}
	}
	return None, false
}

// Parent returns the primary parent of d, or None for the root.
func (t *Taxonomy) Parent(d Topic) Topic {
	if !t.valid(d) || d == Root {
		return None
	}
	return t.nodes[d].parents[0]
}

// Parents returns all parents (primary first). The returned slice must not
// be modified.
func (t *Taxonomy) Parents(d Topic) []Topic {
	if !t.valid(d) {
		return nil
	}
	return t.nodes[d].parents
}

// Children returns the direct subtopics of d. The returned slice must not
// be modified.
func (t *Taxonomy) Children(d Topic) []Topic {
	if !t.valid(d) {
		return nil
	}
	return t.nodes[d].children
}

// IsLeaf reports whether d has zero outdegree, i.e. is a most specific
// category (§3.1).
func (t *Taxonomy) IsLeaf(d Topic) bool {
	return t.valid(d) && len(t.nodes[d].children) == 0
}

// Siblings returns the number of d's siblings under its primary parent,
// the sib(p) of Eq. 3. The root has zero siblings.
func (t *Taxonomy) Siblings(d Topic) int {
	if !t.valid(d) || d == Root {
		return 0
	}
	p := t.nodes[d].parents[0]
	n := 0
	for _, c := range t.nodes[p].children {
		if c != d && t.nodes[c].parents[0] == p {
			n++
		}
	}
	return n
}

// PrimaryPath returns the path (p0, p1, ..., pq) from the top element
// p0 = ⊤ to pq = d along primary parents, as used by Eq. 3.
func (t *Taxonomy) PrimaryPath(d Topic) []Topic {
	if !t.valid(d) {
		return nil
	}
	var rev []Topic
	for cur := d; cur != None; cur = t.Parent(cur) {
		rev = append(rev, cur)
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// Depth returns the number of edges on the primary path from the root to d.
func (t *Taxonomy) Depth(d Topic) int {
	n := 0
	for cur := d; cur != None && cur != Root; cur = t.Parent(cur) {
		n++
	}
	return n
}

// Ancestors returns the set of all topics reachable from d by parent edges
// (primary and secondary), excluding d itself, in no particular order.
func (t *Taxonomy) Ancestors(d Topic) []Topic {
	if !t.valid(d) {
		return nil
	}
	seen := map[Topic]bool{}
	stack := append([]Topic(nil), t.nodes[d].parents...)
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[cur] {
			continue
		}
		seen[cur] = true
		stack = append(stack, t.nodes[cur].parents...)
	}
	out := make([]Topic, 0, len(seen))
	for d := range seen {
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// LCA returns the lowest common ancestor of a and b along primary paths.
func (t *Taxonomy) LCA(a, b Topic) Topic {
	if !t.valid(a) || !t.valid(b) {
		return None
	}
	pa, pb := t.PrimaryPath(a), t.PrimaryPath(b)
	n := len(pa)
	if len(pb) < n {
		n = len(pb)
	}
	lca := Root
	for i := 0; i < n && pa[i] == pb[i]; i++ {
		lca = pa[i]
	}
	return lca
}

// WuPalmer returns the Wu-Palmer similarity of two topics along primary
// paths: 2·depth(LCA) / (depth(a)+depth(b)), in [0,1]. Identical topics
// score 1; topics sharing only the root score 0. Used for taxonomy-driven
// diversity measures over recommendation lists.
func (t *Taxonomy) WuPalmer(a, b Topic) float64 {
	if !t.valid(a) || !t.valid(b) {
		return 0
	}
	if a == b && a == Root {
		return 1
	}
	da, db := t.Depth(a), t.Depth(b)
	if da+db == 0 {
		return 0
	}
	return 2 * float64(t.Depth(t.LCA(a, b))) / float64(da+db)
}

// Leaves returns all leaf topics in handle order.
func (t *Taxonomy) Leaves() []Topic {
	var out []Topic
	for i := range t.nodes {
		if len(t.nodes[i].children) == 0 {
			out = append(out, Topic(i))
		}
	}
	return out
}

// Topics returns all topic handles in creation order, starting with Root.
func (t *Taxonomy) Topics() []Topic {
	out := make([]Topic, len(t.nodes))
	for i := range out {
		out[i] = Topic(i)
	}
	return out
}

// Walk visits every topic in a depth-first pre-order over primary-child
// edges, calling fn with the topic and its depth. Walk stops early if fn
// returns false.
func (t *Taxonomy) Walk(fn func(d Topic, depth int) bool) {
	type frame struct {
		d     Topic
		depth int
	}
	stack := []frame{{Root, 0}}
	for len(stack) > 0 {
		f := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if !fn(f.d, f.depth) {
			return
		}
		kids := t.nodes[f.d].children
		for i := len(kids) - 1; i >= 0; i-- {
			c := kids[i]
			if t.nodes[c].parents[0] == f.d { // primary edge only
				stack = append(stack, frame{c, f.depth + 1})
			}
		}
	}
}

// Stats summarizes taxonomy shape; experiment E8 uses it to contrast the
// deep book taxonomy with the broader, shallower DVD taxonomy (§6).
type Stats struct {
	Topics      int     // total number of topics
	Leaves      int     // number of leaf topics
	MaxDepth    int     // deepest primary path length
	MeanDepth   float64 // mean leaf depth
	MeanOutdeg  float64 // mean children per inner topic
	InnerTopics int     // topics with outdegree > 0
}

// ComputeStats walks the taxonomy and returns its shape statistics.
func (t *Taxonomy) ComputeStats() Stats {
	s := Stats{Topics: len(t.nodes)}
	var leafDepthSum, childSum int
	t.Walk(func(d Topic, depth int) bool {
		if t.IsLeaf(d) {
			s.Leaves++
			leafDepthSum += depth
			if depth > s.MaxDepth {
				s.MaxDepth = depth
			}
		} else {
			s.InnerTopics++
			childSum += len(t.nodes[d].children)
		}
		return true
	})
	if s.Leaves > 0 {
		s.MeanDepth = float64(leafDepthSum) / float64(s.Leaves)
	}
	if s.InnerTopics > 0 {
		s.MeanOutdeg = float64(childSum) / float64(s.InnerTopics)
	}
	return s
}
