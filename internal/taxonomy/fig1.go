package taxonomy

// Fig1 reconstructs the "small fragment from the Amazon book taxonomy" of
// the paper's Figure 1, which Example 1 (§3.3) uses for its topic score
// assignment walkthrough.
//
// The figure itself is not machine-readable in the paper, but Example 1
// pins the sibling counts along the path Books → Science → Mathematics →
// Pure → Algebra exactly: the published scores (29.087, 14.543, 4.848,
// 1.212, 0.303) imply division factors sib+1 of 2, 3, 4 and 4 at the
// Algebra, Pure, Mathematics and Science levels respectively. The filler
// sibling names below are drawn from real Amazon book-taxonomy branches of
// the era ("Applied" appears verbatim in §3.3's similarity example).
func Fig1() *Taxonomy {
	t := New("Books")

	science := t.MustAdd(Root, "Science")
	t.MustAdd(Root, "Fiction")
	t.MustAdd(Root, "Nonfiction")
	t.MustAdd(Root, "Reference")

	math := t.MustAdd(science, "Mathematics")
	t.MustAdd(science, "Physics")
	t.MustAdd(science, "Astronomy")
	t.MustAdd(science, "Nature")

	pure := t.MustAdd(math, "Pure")
	t.MustAdd(math, "Applied")
	t.MustAdd(math, "History")

	t.MustAdd(pure, "Algebra")
	t.MustAdd(pure, "Calculus")

	return t
}
