package datagen

import (
	"fmt"
	"hash/fnv"
	"math"
	"sync"
	"testing"
)

// TestZipfDeterministicAcrossWorkers is the determinism regression for
// the counter-based sampler: the draw sequence for a fixed seed must be
// identical whether one worker draws every index or W workers each draw
// a disjoint stripe. This is the property that keeps load-harness event
// plans byte-identical regardless of executor parallelism.
func TestZipfDeterministicAcrossWorkers(t *testing.T) {
	const n, draws = 500, 4096
	z := NewZipf(1117, 1.07, n)

	serial := make([]int, draws)
	for i := range serial {
		serial[i] = z.Pick(uint64(i))
	}

	for _, workers := range []int{2, 3, 8, 17} {
		parallel := make([]int, draws)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				// Each worker owns the stripe i ≡ w (mod workers); a
				// fresh sampler per worker proves Pick carries no
				// cross-call state.
				zw := NewZipf(1117, 1.07, n)
				for i := w; i < draws; i += workers {
					parallel[i] = zw.Pick(uint64(i))
				}
			}(w)
		}
		wg.Wait()
		for i := range serial {
			if parallel[i] != serial[i] {
				t.Fatalf("workers=%d: draw %d = %d, serial drew %d", workers, i, parallel[i], serial[i])
			}
		}
	}
}

// TestZipfSkew sanity-checks the rank weighting: with s>0 the head item
// must dominate a deep-tail item roughly by the configured power law.
func TestZipfSkew(t *testing.T) {
	const n, draws = 100, 200000
	z := NewZipf(7, 1.0, n)
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[z.Pick(uint64(i))]++
	}
	if counts[0] <= counts[n-1] {
		t.Fatalf("no skew: head=%d tail=%d", counts[0], counts[n-1])
	}
	// With s=1 the head:tail ratio is n; allow a generous band.
	ratio := float64(counts[0]) / math.Max(float64(counts[n-1]), 1)
	if ratio < float64(n)/4 {
		t.Fatalf("head/tail ratio %.1f, want ≳ %d", ratio, n/4)
	}

	// s=0 is uniform: min and max counts stay within a loose band.
	u := NewZipf(7, 0, n)
	counts = make([]int, n)
	for i := 0; i < draws; i++ {
		counts[u.Pick(uint64(i))]++
	}
	minC, maxC := draws, 0
	for _, c := range counts {
		if c < minC {
			minC = c
		}
		if c > maxC {
			maxC = c
		}
	}
	if minC == 0 || float64(maxC)/float64(minC) > 2 {
		t.Fatalf("uniform draw skewed: min=%d max=%d", minC, maxC)
	}
}

// TestGenerateFingerprint pins the exact generated community for two
// seeds. The preferential-attachment sampler was rebuilt on Fenwick
// trees for 10^5-agent scale; these hashes were captured from the
// pre-tree linear-scan generator, so a pass proves the refactor (and
// any future one) is draw-for-draw identical.
func TestGenerateFingerprint(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		want uint64
	}{
		{"small-seed1", SmallScale(), 0x54298bdc81e24eeb},
		{"seed42-skew1", func() Config {
			c := SmallScale()
			c.Seed = 42
			c.PopularitySkew = 1.0
			return c
		}(), 0x85bc86e380b02a5e},
	}
	for _, tc := range cases {
		comm, _ := Generate(tc.cfg)
		h := fnv.New64a()
		for _, id := range comm.Agents() {
			a := comm.Agent(id)
			fmt.Fprintf(h, "%s|%d|%d\n", id, len(a.Trust), len(a.Ratings))
			for _, ts := range a.TrustedPeers() {
				fmt.Fprintf(h, "t %s %.6f\n", ts.Dst, ts.Value)
			}
			for _, rs := range a.RatedProducts() {
				fmt.Fprintf(h, "r %s %.6f\n", rs.Product, rs.Value)
			}
		}
		if got := h.Sum64(); got != tc.want {
			t.Errorf("%s: fingerprint %016x, want %016x", tc.name, got, tc.want)
		}
	}
}

// TestFenwickMatchesLinearScan drives the tree against the scan it
// replaced on randomized weight sequences.
func TestFenwickMatchesLinearScan(t *testing.T) {
	const n = 97
	w := make([]int, n)
	for i := range w {
		w[i] = 1
	}
	f := newFenwick(n)
	for i := 0; i < n; i++ {
		f.Add(i, 1)
	}
	linear := func(r int) int {
		for i, wi := range w {
			r -= wi
			if r < 0 {
				return i
			}
		}
		return n - 1
	}
	// Deterministic pseudo-random walk over draws and weight bumps.
	for step := uint64(0); step < 5000; step++ {
		r := int(Uniform01(3, step) * float64(f.Total()))
		if r >= f.Total() {
			r = f.Total() - 1
		}
		want, got := linear(r), f.FindPrefix(r)
		if want != got {
			t.Fatalf("step %d: FindPrefix(%d) = %d, linear scan = %d", step, r, got, want)
		}
		bumpAt := int(Uniform01(4, step) * n)
		w[bumpAt]++
		f.Add(bumpAt, 1)
	}
}
