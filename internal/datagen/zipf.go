package datagen

import "math"

// Zipf is a seeded, counter-based Zipf popularity sampler: Pick(i) draws
// the item index for the i-th event as a pure function of (seed, i),
// with rank weights 1/(r+1)^s. Because there is no generator state to
// advance, any number of workers drawing disjoint event-index ranges
// reproduce exactly the sequence a single worker would draw — the
// determinism contract the load harness (internal/loadgen) leans on to
// keep scenario event sequences identical across worker counts.
//
// s = 0 degrades to a uniform draw. The cumulative weight table costs
// O(n) once at construction; each Pick is one hash plus a binary search.
type Zipf struct {
	seed int64
	n    int
	cum  []float64 // cumulative rank weights; nil when uniform
}

// NewZipf builds a sampler over n items with skew s ≥ 0. n must be ≥ 1.
func NewZipf(seed int64, s float64, n int) *Zipf {
	if n < 1 {
		n = 1
	}
	z := &Zipf{seed: seed, n: n}
	if s > 0 && n > 1 {
		z.cum = make([]float64, n)
		total := 0.0
		for r := 0; r < n; r++ {
			total += math.Pow(float64(r+1), -s)
			z.cum[r] = total
		}
	}
	return z
}

// N returns the item count the sampler draws from.
func (z *Zipf) N() int { return z.n }

// Pick returns the item index in [0, N()) for event i.
func (z *Zipf) Pick(i uint64) int {
	u := Uniform01(z.seed, i)
	if z.cum == nil {
		idx := int(u * float64(z.n))
		if idx >= z.n { // u is in [0,1); guard the closed edge anyway
			idx = z.n - 1
		}
		return idx
	}
	x := u * z.cum[z.n-1]
	lo, hi := 0, z.n-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cum[mid] < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Uniform01 returns a uniform float64 in [0,1) as a pure function of
// (seed, counter) — the stateless randomness primitive behind Zipf,
// exported so load scenarios can derive other per-event decisions
// (read/write choice, endpoint mix, churn) from the same determinism
// model.
func Uniform01(seed int64, counter uint64) float64 {
	return float64(mix64(uint64(seed)^mix64(counter))>>11) / (1 << 53)
}

// mix64 is the SplitMix64 finalizer: a cheap, well-distributed bijection
// on 64-bit words.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
