package datagen

import (
	"math/rand"
	"testing"

	"swrec/internal/isbn"
	"swrec/internal/model"
	"swrec/internal/taxonomy"
)

func TestGenerateTaxonomyPresets(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	book := GenerateTaxonomy(BookTaxonomy(), rng)
	if got := book.Len(); got != 21845 {
		t.Fatalf("book taxonomy topics = %d, want 21845 (>20,000 per §4)", got)
	}
	bs := book.ComputeStats()
	if bs.MaxDepth != 7 {
		t.Fatalf("book depth = %d, want 7", bs.MaxDepth)
	}

	unspsc := GenerateTaxonomy(UNSPSCTaxonomy(), rng)
	us := unspsc.ComputeStats()
	if us.MaxDepth != 4 {
		t.Fatalf("UNSPSC depth = %d, want exactly 4 levels", us.MaxDepth)
	}
	if unspsc.Len() < 15000 {
		t.Fatalf("UNSPSC codes = %d, want ≈20k", unspsc.Len())
	}
	if got := len(unspsc.Children(taxonomy.Root)); got != 55 {
		t.Fatalf("UNSPSC segments = %d, want 55", got)
	}

	dvd := GenerateTaxonomy(DVDTaxonomy(), rng)
	ds := dvd.ComputeStats()
	// §6: DVD taxonomy "contains more topics than its book counterpart,
	// though being less deep".
	if dvd.Len() <= book.Len() {
		t.Fatalf("DVD topics %d must exceed book topics %d", dvd.Len(), book.Len())
	}
	if ds.MaxDepth >= bs.MaxDepth {
		t.Fatalf("DVD depth %d must be shallower than book depth %d", ds.MaxDepth, bs.MaxDepth)
	}
}

func TestGenerateTaxonomyJitterAndCap(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	cfg := TaxonomyConfig{Depth: 5, Branching: 4, Jitter: 0.5, Root: "R", MaxTopics: 500}
	tax := GenerateTaxonomy(cfg, rng)
	if tax.Len() > 500 {
		t.Fatalf("MaxTopics violated: %d", tax.Len())
	}
	if tax.Len() < 100 {
		t.Fatalf("suspiciously small taxonomy: %d", tax.Len())
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := SmallScale()
	c1, m1 := Generate(cfg)
	c2, m2 := Generate(cfg)
	if c1.ComputeStats() != c2.ComputeStats() {
		t.Fatalf("nondeterministic: %+v vs %+v", c1.ComputeStats(), c2.ComputeStats())
	}
	for id, k := range m1.AgentCluster {
		if m2.AgentCluster[id] != k {
			t.Fatalf("cluster assignment differs for %s", id)
		}
	}
	// Different seeds give different communities.
	cfg2 := cfg
	cfg2.Seed = 99
	c3, _ := Generate(cfg2)
	if c1.ComputeStats() == c3.ComputeStats() {
		t.Fatal("different seeds produced identical stats")
	}
}

func TestGenerateSmallScaleShape(t *testing.T) {
	cfg := SmallScale()
	comm, meta := Generate(cfg)
	st := comm.ComputeStats()
	if st.Agents != cfg.Agents {
		t.Fatalf("Agents = %d, want %d", st.Agents, cfg.Agents)
	}
	if st.Products != cfg.Products {
		t.Fatalf("Products = %d, want %d", st.Products, cfg.Products)
	}
	if st.Ratings == 0 || st.TrustEdges == 0 {
		t.Fatalf("degenerate community: %+v", st)
	}
	if st.MeanRatings < 1 || st.MeanRatings > float64(3*cfg.MeanRatings) {
		t.Fatalf("MeanRatings = %v, far from configured %d", st.MeanRatings, cfg.MeanRatings)
	}
	if st.DistrustEdges == 0 {
		t.Fatal("no distrust edges despite DistrustFraction > 0")
	}
	// Every product has at least one descriptor and a valid ISBN URN.
	for _, pid := range comm.Products() {
		p := comm.Product(pid)
		if len(p.Topics) == 0 {
			t.Fatalf("product %s has no descriptors", pid)
		}
		raw, ok := isbn.FromURN(string(p.ID))
		if !ok || !isbn.Valid(raw) {
			t.Fatalf("product %s lacks a valid ISBN URN", p.ID)
		}
		if k, ok := meta.ProductCluster[pid]; !ok || k < 0 || k >= cfg.Clusters {
			t.Fatalf("product %s has bad cluster %d", pid, k)
		}
	}
	// Every agent is clustered and publishable.
	for _, id := range comm.Agents() {
		if k, ok := meta.AgentCluster[id]; !ok || k < 0 || k >= cfg.Clusters {
			t.Fatalf("agent %s has bad cluster", id)
		}
	}
}

// TestFidelityShapesTrustGraph verifies the E2 control knob: high cluster
// fidelity concentrates trust edges within clusters.
func TestFidelityShapesTrustGraph(t *testing.T) {
	intraFraction := func(fid float64) float64 {
		cfg := SmallScale()
		cfg.ClusterFidelity = fid
		comm, meta := Generate(cfg)
		intra, total := 0, 0
		for _, e := range comm.TrustEdges() {
			if e.Value <= 0 {
				continue
			}
			total++
			if meta.AgentCluster[e.Src] == meta.AgentCluster[e.Dst] {
				intra++
			}
		}
		return float64(intra) / float64(total)
	}
	lo, hi := intraFraction(0.0), intraFraction(0.95)
	if hi <= lo+0.3 {
		t.Fatalf("fidelity had no effect: intra fraction %v (0.0) vs %v (0.95)", lo, hi)
	}
}

// TestPreferentialAttachmentSkew verifies the scale-free-ish in-degree:
// the most-trusted agent collects far more endorsements than the mean.
func TestPreferentialAttachmentSkew(t *testing.T) {
	cfg := SmallScale()
	cfg.ClusterFidelity = 0 // one global attachment market
	comm, _ := Generate(cfg)
	indeg := map[model.AgentID]int{}
	total := 0
	for _, e := range comm.TrustEdges() {
		if e.Value > 0 {
			indeg[e.Dst]++
			total++
		}
	}
	maxDeg := 0
	for _, d := range indeg {
		if d > maxDeg {
			maxDeg = d
		}
	}
	mean := float64(total) / float64(cfg.Agents)
	if float64(maxDeg) < 3*mean {
		t.Fatalf("in-degree not skewed: max %d vs mean %.2f", maxDeg, mean)
	}
}

func TestInjectSybils(t *testing.T) {
	cfg := SmallScale()
	comm, _ := Generate(cfg)
	victim := comm.Agents()[0]
	nVictimRatings := len(comm.Agent(victim).Ratings)
	if nVictimRatings == 0 {
		t.Skip("victim rated nothing")
	}
	push := model.ProductID("urn:isbn:attack")
	sybils := InjectSybils(comm, victim, 5, push)
	if len(sybils) != 5 {
		t.Fatalf("sybils = %d", len(sybils))
	}
	for _, s := range sybils {
		ag := comm.Agent(s)
		if ag == nil {
			t.Fatalf("sybil %s not materialized", s)
		}
		if v, ok := ag.Ratings[push]; !ok || v != 1 {
			t.Fatal("sybil does not push the product")
		}
		// Clone check: every victim rating replicated.
		for p, v := range comm.Agent(victim).Ratings {
			if ag.Ratings[p] != v {
				t.Fatalf("sybil did not clone rating of %s", p)
			}
		}
	}
	// Ring trust among sybils, none from honest agents.
	if _, ok := comm.Trust(sybils[0], sybils[1]); !ok {
		t.Fatal("sybil ring missing")
	}
	for _, id := range comm.Agents() {
		if id == sybils[0] || id == sybils[1] || id == sybils[2] || id == sybils[3] || id == sybils[4] {
			continue
		}
		for _, s := range sybils {
			if _, ok := comm.Trust(id, s); ok {
				t.Fatalf("honest agent %s trusts a sybil", id)
			}
		}
	}
	// Degenerate inputs.
	if got := InjectSybils(comm, "nobody", 3, push); got != nil {
		t.Fatal("unknown victim must yield nil")
	}
	if got := InjectSybils(comm, victim, 0, push); got != nil {
		t.Fatal("zero count must yield nil")
	}
	if got := InjectSybils(comm, victim, 1, "urn:isbn:other"); len(got) != 1 {
		t.Fatal("single sybil must work (no ring)")
	}
}

func TestPopularitySkew(t *testing.T) {
	ratingCounts := func(skew float64) []int {
		cfg := SmallScale()
		cfg.PopularitySkew = skew
		cfg.ClusterFidelity = 0 // one global pool, cleanest signal
		comm, _ := Generate(cfg)
		counts := map[model.ProductID]int{}
		for _, id := range comm.Agents() {
			for p := range comm.Agent(id).Ratings {
				counts[p]++
			}
		}
		out := make([]int, 0, len(counts))
		for _, n := range counts {
			out = append(out, n)
		}
		// Descending.
		for i := 0; i < len(out); i++ {
			for j := i + 1; j < len(out); j++ {
				if out[j] > out[i] {
					out[i], out[j] = out[j], out[i]
				}
			}
		}
		return out
	}
	uniform := ratingCounts(0)
	skewed := ratingCounts(1.2)
	if len(uniform) == 0 || len(skewed) == 0 {
		t.Fatal("no ratings generated")
	}
	// The most popular product under skew dominates far more than under
	// uniform choice.
	if skewed[0] <= 2*uniform[0] {
		t.Fatalf("skew had no effect: top count %d (skewed) vs %d (uniform)",
			skewed[0], uniform[0])
	}
}

func TestZipfPickerDistribution(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	z := newZipfPicker(1.0)
	counts := make([]int, 10)
	for i := 0; i < 20000; i++ {
		counts[z.pick(rng, 10)]++
	}
	// Rank 0 ≈ 2× rank 1 ≈ 10× rank 9, roughly.
	if counts[0] <= counts[1] || counts[1] <= counts[9] {
		t.Fatalf("Zipf ordering violated: %v", counts)
	}
	if ratio := float64(counts[0]) / float64(counts[9]); ratio < 5 {
		t.Fatalf("head/tail ratio = %v, want ≫ 1", ratio)
	}
	// s = 0 degenerates to uniform.
	u := newZipfPicker(0)
	if got := u.pick(rng, 1); got != 0 {
		t.Fatalf("pick(n=1) = %d", got)
	}
}

func TestGeometricMean(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, mean := range []int{1, 4, 12} {
		sum := 0
		const n = 5000
		for i := 0; i < n; i++ {
			g := geometric(rng, mean)
			if g < 1 {
				t.Fatalf("geometric returned %d", g)
			}
			sum += g
		}
		got := float64(sum) / n
		if mean == 1 {
			if got != 1 {
				t.Fatalf("mean-1 geometric = %v", got)
			}
			continue
		}
		if got < 0.6*float64(mean) || got > 1.4*float64(mean) {
			t.Fatalf("geometric mean = %v, want ≈%d", got, mean)
		}
	}
}

func TestWithDefaults(t *testing.T) {
	comm, meta := Generate(Config{Seed: 5})
	if comm.NumAgents() == 0 || comm.NumProducts() == 0 {
		t.Fatal("zero config must still generate")
	}
	if meta.Config.BaseHost == "" || meta.Config.Clusters == 0 {
		t.Fatalf("defaults not applied: %+v", meta.Config)
	}
	if comm.Taxonomy() == nil {
		t.Fatal("default taxonomy missing")
	}
}

func TestTopicsSortedPerProduct(t *testing.T) {
	comm, _ := Generate(SmallScale())
	for _, pid := range comm.Products() {
		ts := comm.Product(pid).Topics
		for i := 1; i < len(ts); i++ {
			if ts[i-1] >= ts[i] {
				t.Fatalf("descriptors not sorted/unique for %s: %v", pid, ts)
			}
		}
		_ = taxonomy.Root
	}
}
