// Package datagen synthesizes the experimental infrastructure of §4.1.
// The paper mined All Consuming and Advogato for "approximately 9,100
// users, their trust relationships and implicit product ratings",
// "categorization data about 9,953 books", and captured "Amazon's huge
// book taxonomy" (>20,000 topics, deep and fine-grained; the DVD variant
// has more topics but is less deep, §6). Those crawls are not available,
// so this package generates communities with the same structural
// properties (see DESIGN.md, substitutions):
//
//   - a procedurally generated taxonomy with controllable depth and
//     branching, calibrated so the book preset exceeds 20,000 topics;
//   - interest clusters that drive BOTH the trust graph and the rating
//     behavior, making trust and profile similarity correlate — the
//     empirically observed property ([5], §3.2) the whole approach
//     leans on. ClusterFidelity tunes the correlation strength, which
//     experiment E2 sweeps;
//   - a preferential-attachment trust graph (scale-free in-degree, as
//     observed on Advogato);
//   - rating histories with skewed (geometric) lengths, as weblog-mined
//     implicit votes have;
//   - sybil attack injection for the manipulation experiment E4.
//
// Everything is deterministic given Config.Seed.
package datagen

import (
	"fmt"
	"math"
	"math/rand"

	"swrec/internal/isbn"
	"swrec/internal/model"
	"swrec/internal/taxonomy"
)

// TaxonomyConfig shapes the generated taxonomy.
type TaxonomyConfig struct {
	// Depth is the maximum primary-path length below the root.
	Depth int
	// Branching is the mean number of children of an inner topic.
	Branching int
	// Levels, when non-empty, overrides Depth/Branching with an explicit
	// per-level branching factor: Levels[0] children under the root,
	// Levels[1] under each of those, and so on. Experiment E8 uses it to
	// compare taxonomies of equal leaf count but different depth.
	Levels []int
	// Jitter in [0,1) randomizes per-node child counts by ±Jitter·Branching.
	Jitter float64
	// MaxTopics stops growth once reached (0 = unlimited).
	MaxTopics int
	// Root names the top element.
	Root string
}

// Config parameterizes community generation.
type Config struct {
	Seed     int64
	Agents   int
	Products int
	Taxonomy TaxonomyConfig
	// Clusters is the number of interest clusters.
	Clusters int
	// MeanRatings is the mean rating-history length (geometric).
	MeanRatings int
	// MeanTrust is the mean trust out-degree (geometric, preferential
	// attachment targets).
	MeanTrust int
	// ClusterFidelity in [0,1]: probability that a rating or trust edge
	// stays within the agent's own cluster.
	ClusterFidelity float64
	// DistrustFraction of trust edges carry negative values.
	DistrustFraction float64
	// DescriptorsPerProduct is the mean |f(b)| (≥1).
	DescriptorsPerProduct int
	// PopularitySkew s ≥ 0 makes product choice Zipf-like: within a pool,
	// the product at popularity rank r is drawn with weight 1/(r+1)^s.
	// 0 (default) keeps the uniform choice; weblog-mined corpora like All
	// Consuming show s ≈ 1 (a few books dominate the mentions).
	PopularitySkew float64
	// BaseHost forms agent IDs "http://<BaseHost>/people/a<i>" so the
	// community is directly publishable via semweb.
	BaseHost string
}

// BookTaxonomy is the preset matching Amazon's book taxonomy shape:
// deeply nested, >20,000 topics (uniform branching 4 to depth 7 yields
// (4^8-1)/3 = 21,845 topics).
func BookTaxonomy() TaxonomyConfig {
	return TaxonomyConfig{Depth: 7, Branching: 4, Root: "Books"}
}

// DVDTaxonomy is the §6 contrast preset: "more topics than its book
// counterpart, though being less deep" — branching 12 to depth 4 yields
// (12^5-1)/11 = 22,621 topics.
func DVDTaxonomy() TaxonomyConfig {
	return TaxonomyConfig{Depth: 4, Branching: 12, Root: "DVD"}
}

// UNSPSCTaxonomy mirrors the "United Nations Standard Products and
// Services Code" §4 points to as the standardization effort: a fixed
// four-level scheme (segment / family / class / commodity) that
// "provides much less information and nesting than, for instance,
// Amazon's taxonomy for books". 55 segments with modest fan-out below,
// ≈21k codes like the real UNSPSC, but only 4 levels deep.
func UNSPSCTaxonomy() TaxonomyConfig {
	return TaxonomyConfig{Levels: []int{55, 8, 6, 8}, Root: "UNSPSC"}
}

// PaperScale reproduces the §4.1 corpus dimensions: ≈9,100 agents, 9,953
// books, the >20k-topic book taxonomy.
func PaperScale() Config {
	return Config{
		Seed:                  1,
		Agents:                9100,
		Products:              9953,
		Taxonomy:              BookTaxonomy(),
		Clusters:              24,
		MeanRatings:           12,
		MeanTrust:             8,
		ClusterFidelity:       0.8,
		DistrustFraction:      0.05,
		DescriptorsPerProduct: 3,
		BaseHost:              "swrec.example",
	}
}

// SmallScale is a fast variant for tests and examples (same structure,
// two orders of magnitude smaller).
func SmallScale() Config {
	c := PaperScale()
	c.Agents = 200
	c.Products = 300
	c.Taxonomy = TaxonomyConfig{Depth: 4, Branching: 4, Root: "Books"}
	c.Clusters = 6
	c.MeanRatings = 8
	c.MeanTrust = 5
	return c
}

// withDefaults fills zero fields.
func (c Config) withDefaults() Config {
	if c.Agents == 0 {
		c.Agents = 100
	}
	if c.Products == 0 {
		c.Products = 100
	}
	if c.Taxonomy.Depth == 0 && len(c.Taxonomy.Levels) == 0 {
		c.Taxonomy = TaxonomyConfig{Depth: 4, Branching: 4, Root: "Books"}
	}
	if c.Taxonomy.Root == "" {
		c.Taxonomy.Root = "Books"
	}
	if c.Clusters == 0 {
		c.Clusters = 4
	}
	if c.MeanRatings == 0 {
		c.MeanRatings = 8
	}
	if c.MeanTrust == 0 {
		c.MeanTrust = 5
	}
	if c.DescriptorsPerProduct == 0 {
		c.DescriptorsPerProduct = 2
	}
	if c.BaseHost == "" {
		c.BaseHost = "swrec.example"
	}
	return c
}

// Meta carries the generation ground truth the evaluation harness needs.
type Meta struct {
	// AgentCluster maps each agent to its interest cluster.
	AgentCluster map[model.AgentID]int
	// ProductCluster maps each product to the cluster whose topics
	// dominated its descriptors.
	ProductCluster map[model.ProductID]int
	// Config is the (defaulted) configuration used.
	Config Config
}

// GenerateTaxonomy builds a taxonomy per the config, deterministic in rng.
func GenerateTaxonomy(cfg TaxonomyConfig, rng *rand.Rand) *taxonomy.Taxonomy {
	if cfg.Root == "" {
		cfg.Root = "Books"
	}
	tax := taxonomy.New(cfg.Root)
	type frame struct {
		d     taxonomy.Topic
		depth int
	}
	depth := cfg.Depth
	if len(cfg.Levels) > 0 {
		depth = len(cfg.Levels)
	}
	queue := []frame{{taxonomy.Root, 0}}
	n := 0
	for len(queue) > 0 {
		f := queue[0]
		queue = queue[1:]
		if f.depth >= depth {
			continue
		}
		kids := cfg.Branching
		if len(cfg.Levels) > 0 {
			kids = cfg.Levels[f.depth]
		}
		if cfg.Jitter > 0 {
			span := int(cfg.Jitter * float64(cfg.Branching))
			if span > 0 {
				kids += rng.Intn(2*span+1) - span
			}
			if kids < 1 {
				kids = 1
			}
		}
		for i := 0; i < kids; i++ {
			if cfg.MaxTopics > 0 && tax.Len() >= cfg.MaxTopics {
				return tax
			}
			child := tax.MustAdd(f.d, fmt.Sprintf("T%d-%d", n, i))
			queue = append(queue, frame{child, f.depth + 1})
		}
		n++
	}
	return tax
}

// Generate builds a community and its ground-truth metadata.
func Generate(cfg Config) (*model.Community, *Meta) {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))

	tax := GenerateTaxonomy(cfg.Taxonomy, rng)
	comm := model.NewCommunity(tax)
	meta := &Meta{
		AgentCluster:   make(map[model.AgentID]int, cfg.Agents),
		ProductCluster: make(map[model.ProductID]int, cfg.Products),
		Config:         cfg,
	}

	// Interest clusters: each cluster anchors at a distinct depth-1
	// subtree set (wrapping if clusters outnumber subtrees); leaves are
	// sampled from the anchored subtrees.
	top := tax.Children(taxonomy.Root)
	clusterLeaves := make([][]taxonomy.Topic, cfg.Clusters)
	allLeaves := tax.Leaves()
	for k := 0; k < cfg.Clusters; k++ {
		anchor := top[k%len(top)]
		var leaves []taxonomy.Topic
		for _, l := range allLeaves {
			if tax.PrimaryPath(l)[1] == anchor {
				leaves = append(leaves, l)
			}
		}
		if len(leaves) == 0 {
			leaves = allLeaves
		}
		clusterLeaves[k] = leaves
	}

	// Products: assigned to a home cluster; descriptors drawn mostly from
	// the home cluster's leaves.
	productIDs := make([]model.ProductID, cfg.Products)
	productsByCluster := make([][]model.ProductID, cfg.Clusters)
	for i := 0; i < cfg.Products; i++ {
		k := rng.Intn(cfg.Clusters)
		nDesc := 1 + rng.Intn(2*cfg.DescriptorsPerProduct-1)
		topicSet := map[taxonomy.Topic]bool{}
		for j := 0; j < nDesc; j++ {
			pool := clusterLeaves[k]
			if rng.Float64() > 0.8 { // some cross-cluster descriptors
				pool = allLeaves
			}
			topicSet[pool[rng.Intn(len(pool))]] = true
		}
		topics := make([]taxonomy.Topic, 0, len(topicSet))
		for d := range topicSet {
			topics = append(topics, d)
		}
		sortTopics(topics)
		code := isbn.Synthesize(i)
		id := model.ProductID(isbn.URN(code))
		comm.AddProduct(model.Product{
			ID:     id,
			Title:  fmt.Sprintf("Book #%d", i),
			ISBN:   code,
			Topics: topics,
		})
		productIDs[i] = id
		productsByCluster[k] = append(productsByCluster[k], id)
		meta.ProductCluster[id] = k
	}

	// Agents: cluster assignment round-robin with random offset keeps
	// cluster sizes balanced.
	agents := make([]model.AgentID, cfg.Agents)
	agentsByCluster := make([][]int, cfg.Clusters)
	for i := 0; i < cfg.Agents; i++ {
		id := model.AgentID(fmt.Sprintf("http://%s/people/a%d", cfg.BaseHost, i))
		agents[i] = id
		a := comm.AddAgent(id)
		a.Name = fmt.Sprintf("Agent %d", i)
		k := i % cfg.Clusters
		meta.AgentCluster[id] = k
		agentsByCluster[k] = append(agentsByCluster[k], i)
	}

	// Ratings: geometric history length, products mostly from the own
	// cluster. Values skew positive (implicit weblog votes), with some
	// explicit dislikes. With PopularitySkew set, low-indexed products in
	// each pool act as the "popular" ones (Zipf rank weights).
	zipf := newZipfPicker(cfg.PopularitySkew)
	for i, id := range agents {
		k := meta.AgentCluster[id]
		n := geometric(rng, cfg.MeanRatings)
		for j := 0; j < n; j++ {
			pool := productIDs
			if rng.Float64() < cfg.ClusterFidelity && len(productsByCluster[k]) > 0 {
				pool = productsByCluster[k]
			}
			p := pool[zipf.pick(rng, len(pool))]
			v := 0.3 + 0.7*rng.Float64() // like
			if rng.Float64() < 0.1 {
				v = -(0.3 + 0.7*rng.Float64()) // dislike
			}
			// SetRating cannot fail here: products exist, values bounded.
			if err := comm.SetRating(id, p, v); err != nil {
				panic(err)
			}
		}
		_ = i
	}

	// Trust graph: preferential attachment — targets sampled
	// proportionally to indegree+1, mostly within the cluster. Weights
	// live in Fenwick trees (one global, one per cluster), so each draw
	// and each in-degree bump costs O(log n) instead of the linear pool
	// scan that dominated generation beyond ~10^4 agents. The trees
	// reproduce the scan's selection exactly (first index whose
	// cumulative weight exceeds the draw), so communities are
	// bit-identical to the pre-tree generator for every seed.
	posInCluster := make([]int, cfg.Agents)
	clusterTrees := make([]*fenwick, cfg.Clusters)
	for k, idxs := range agentsByCluster {
		clusterTrees[k] = newFenwick(len(idxs))
		for local, idx := range idxs {
			posInCluster[idx] = local
			clusterTrees[k].Add(local, 1)
		}
	}
	allTree := newFenwick(cfg.Agents)
	for i := 0; i < cfg.Agents; i++ {
		allTree.Add(i, 1)
	}
	bump := func(t int) { // indeg[t]++, in both trees
		allTree.Add(t, 1)
		clusterTrees[t%cfg.Clusters].Add(posInCluster[t], 1)
	}
	for i, id := range agents {
		k := meta.AgentCluster[id]
		n := geometric(rng, cfg.MeanTrust)
		for j := 0; j < n; j++ {
			var t int
			if rng.Float64() < cfg.ClusterFidelity && len(agentsByCluster[k]) > 1 {
				tree := clusterTrees[k]
				t = agentsByCluster[k][tree.FindPrefix(rng.Intn(tree.Total()))]
			} else {
				t = allTree.FindPrefix(rng.Intn(allTree.Total()))
			}
			if t == i {
				continue
			}
			v := 0.4 + 0.6*rng.Float64()
			if rng.Float64() < cfg.DistrustFraction {
				v = -(0.2 + 0.8*rng.Float64())
			}
			if err := comm.SetTrust(id, agents[t], v); err != nil {
				panic(err)
			}
			if v > 0 {
				bump(t)
			}
		}
	}
	return comm, meta
}

// fenwick is a binary-indexed tree over non-negative integer weights:
// O(log n) point updates and O(log n) inverse-CDF search. It backs the
// preferential-attachment sampler at scale.
type fenwick struct {
	tree  []int // 1-based partial sums
	total int
}

func newFenwick(n int) *fenwick { return &fenwick{tree: make([]int, n+1)} }

// Total is the sum of all weights.
func (f *fenwick) Total() int { return f.total }

// Add increases the weight at 0-based index i by w.
func (f *fenwick) Add(i, w int) {
	f.total += w
	for i++; i < len(f.tree); i += i & (-i) {
		f.tree[i] += w
	}
}

// FindPrefix returns the smallest 0-based index i whose cumulative
// weight sum(0..i) exceeds r — the element a linear `r -= w[i]; if r<0
// return i` scan selects. r must be in [0, Total()).
func (f *fenwick) FindPrefix(r int) int {
	i := 0
	mask := 1
	for mask<<1 < len(f.tree) {
		mask <<= 1
	}
	for ; mask > 0; mask >>= 1 {
		if next := i + mask; next < len(f.tree) && f.tree[next] <= r {
			i = next
			r -= f.tree[i]
		}
	}
	return i
}

// zipfPicker draws pool indices with Zipf rank weights 1/(r+1)^s,
// caching cumulative weight tables per pool size.
type zipfPicker struct {
	s      float64
	tables map[int][]float64 // size -> cumulative weights
}

func newZipfPicker(s float64) *zipfPicker {
	return &zipfPicker{s: s, tables: map[int][]float64{}}
}

// pick returns an index in [0, n).
func (z *zipfPicker) pick(rng *rand.Rand, n int) int {
	if z.s <= 0 || n <= 1 {
		return rng.Intn(n)
	}
	cum, ok := z.tables[n]
	if !ok {
		cum = make([]float64, n)
		total := 0.0
		for r := 0; r < n; r++ {
			total += math.Pow(float64(r+1), -z.s)
			cum[r] = total
		}
		z.tables[n] = cum
	}
	x := rng.Float64() * cum[n-1]
	// Binary search for the first cumulative weight ≥ x.
	lo, hi := 0, n-1
	for lo < hi {
		mid := (lo + hi) / 2
		if cum[mid] < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// geometric samples a geometric-ish count with the given mean (≥1).
func geometric(rng *rand.Rand, mean int) int {
	if mean <= 1 {
		return 1
	}
	p := 1.0 / float64(mean)
	n := 1
	for rng.Float64() > p && n < mean*10 {
		n++
	}
	return n
}

// sortTopics orders topics ascending (insertion sort; descriptor sets are
// tiny).
func sortTopics(ts []taxonomy.Topic) {
	for i := 1; i < len(ts); i++ {
		for j := i; j > 0 && ts[j] < ts[j-1]; j-- {
			ts[j], ts[j-1] = ts[j-1], ts[j]
		}
	}
}

// InjectSybils adds count attacker agents that clone the victim's rating
// profile and additionally push pushProduct with a maximal rating — the
// §3.2 manipulation scenario ("malicious agents a_j can accomplish high
// similarity with a_i by simply copying its profile"). The sybils certify
// each other in a ring but receive no trust from the honest community.
// The sybil agent IDs are returned.
func InjectSybils(comm *model.Community, victim model.AgentID, count int, pushProduct model.ProductID) []model.AgentID {
	v := comm.Agent(victim)
	if v == nil || count <= 0 {
		return nil
	}
	if comm.Product(pushProduct) == nil {
		comm.AddProduct(model.Product{ID: pushProduct, Title: "pushed product"})
	}
	ids := make([]model.AgentID, count)
	for i := range ids {
		ids[i] = model.AgentID(fmt.Sprintf("http://sybil.example/people/s%d", i))
		s := comm.AddAgent(ids[i])
		s.Name = fmt.Sprintf("Sybil %d", i)
		for p, val := range v.Ratings {
			s.Ratings[p] = val
		}
		s.Ratings[pushProduct] = 1
		s.MarkDirty()
	}
	for i := range ids {
		if err := comm.SetTrust(ids[i], ids[(i+1)%count], 1); err != nil && count > 1 {
			panic(err)
		}
	}
	return ids
}

// InjectColdStart adds one agent with no ratings and no trust statements —
// the §2 cold-start newcomer every personalization stage is blind to. The
// strategy ladder answers such agents on the popularity rung. Deterministic:
// no randomness, fixed agent ID.
func InjectColdStart(comm *model.Community) model.AgentID {
	id := model.AgentID("http://fixture.example/people/cold-start")
	a := comm.AddAgent(id)
	a.Name = "Cold Start"
	return id
}

// InjectThinTrust adds an agent whose single positive trust statement
// points at a fresh sink buddy (no outgoing trust), so every trust metric
// yields a one-peer neighborhood — below any sane thinness threshold —
// while the agent itself still has a rating history. The buddy clones
// donor's ratings so it can contribute votes. The strategy ladder answers
// such agents on the trust-hop-widening rung. Returns (agent, buddy).
func InjectThinTrust(comm *model.Community, donor model.AgentID) (model.AgentID, model.AgentID) {
	d := comm.Agent(donor)
	if d == nil {
		return "", ""
	}
	buddy := model.AgentID("http://fixture.example/people/thin-buddy")
	b := comm.AddAgent(buddy)
	b.Name = "Thin Buddy"
	for p, val := range d.Ratings {
		b.Ratings[p] = val
	}
	b.MarkDirty()
	id := model.AgentID("http://fixture.example/people/thin-trust")
	a := comm.AddAgent(id)
	a.Name = "Thin Trust"
	// One shared rating keeps the agent's profile defined so only the
	// neighborhood — not the similarity measure — is starved.
	for _, pr := range comm.PositiveRatings(d) {
		if err := comm.SetRating(id, pr.Product.ID, pr.Value); err != nil {
			panic(err)
		}
		break
	}
	// The buddy likes a few products the agent has not rated, so its vote
	// always has something to recommend.
	extra := 0
	for _, pid := range comm.Products() {
		if extra >= 3 {
			break
		}
		if _, rated := a.Ratings[pid]; rated {
			continue
		}
		if err := comm.SetRating(buddy, pid, 1); err != nil {
			panic(err)
		}
		extra++
	}
	if err := comm.SetTrust(id, buddy, 1); err != nil {
		panic(err)
	}
	return id, buddy
}

// InjectDisjointProfile grows a fresh depth-1 branch of the taxonomy with
// nLeaves leaf topics, mints one product per leaf, and adds an agent that
// positively rates all of them while trusting the given peers — §2's "low
// profile overlap" pathology made literal: the agent's interest mass lives
// in a subtree nobody else touches, so fine-grained similarity with every
// peer is near zero even though its trust neighborhood is healthy. The
// strategy ladder answers such agents on the taxonomy-ancestor rung. Must
// run before the community is handed to an engine (it mutates the
// taxonomy). Deterministic: no randomness, fixed IDs.
func InjectDisjointProfile(comm *model.Community, peers []model.AgentID, nLeaves int) model.AgentID {
	tax := comm.Taxonomy()
	if tax == nil || nLeaves < 1 {
		return ""
	}
	branch := tax.MustAdd(taxonomy.Root, "Fixture Obscura")
	id := model.AgentID("http://fixture.example/people/disjoint")
	a := comm.AddAgent(id)
	a.Name = "Disjoint Profile"
	for i := 0; i < nLeaves; i++ {
		genus := tax.MustAdd(branch, fmt.Sprintf("Genus %d", i))
		leaf := tax.MustAdd(genus, fmt.Sprintf("Species %d", i))
		pid := model.ProductID(fmt.Sprintf("urn:fixture:obscura-%d", i))
		comm.AddProduct(model.Product{
			ID:     pid,
			Title:  fmt.Sprintf("Obscura #%d", i),
			Topics: []taxonomy.Topic{leaf},
		})
		if err := comm.SetRating(id, pid, 1); err != nil {
			panic(err)
		}
	}
	for _, p := range peers {
		if comm.Agent(p) == nil {
			continue
		}
		if err := comm.SetTrust(id, p, 1); err != nil {
			panic(err)
		}
	}
	return id
}
