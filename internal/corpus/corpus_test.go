package corpus

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"testing/quick"

	"swrec/internal/datagen"
	"swrec/internal/model"
	"swrec/internal/taxonomy"
)

func TestExportImportRoundTrip(t *testing.T) {
	cfg := datagen.SmallScale()
	cfg.Agents = 40
	cfg.Products = 50
	comm, _ := datagen.Generate(cfg)
	dir := t.TempDir()

	if err := Export(comm, dir); err != nil {
		t.Fatal(err)
	}
	// Layout present.
	for _, f := range []string{"taxonomy.nt", "catalog.nt", "MANIFEST"} {
		if _, err := os.Stat(filepath.Join(dir, f)); err != nil {
			t.Fatalf("missing %s: %v", f, err)
		}
	}
	entries, err := os.ReadDir(filepath.Join(dir, "people"))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != comm.NumAgents() {
		t.Fatalf("people/ has %d files, want %d", len(entries), comm.NumAgents())
	}

	back, err := Import(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := back.ComputeStats(), comm.ComputeStats(); got != want {
		t.Fatalf("stats after round trip: %+v, want %+v", got, want)
	}
	if back.Taxonomy().Len() != comm.Taxonomy().Len() {
		t.Fatal("taxonomy lost in round trip")
	}
	// Spot-check a deep value.
	for _, id := range comm.Agents() {
		for peer, v := range comm.Agent(id).Trust {
			got, ok := back.Trust(id, peer)
			if !ok || got != v {
				t.Fatalf("trust(%s,%s) = %v,%v, want %v", id, peer, got, ok, v)
			}
		}
	}
}

func TestExportIsDeterministic(t *testing.T) {
	cfg := datagen.SmallScale()
	cfg.Agents = 10
	cfg.Products = 15
	comm, _ := datagen.Generate(cfg)
	d1, d2 := t.TempDir(), t.TempDir()
	if err := Export(comm, d1); err != nil {
		t.Fatal(err)
	}
	if err := Export(comm, d2); err != nil {
		t.Fatal(err)
	}
	m1, err := os.ReadFile(filepath.Join(d1, "MANIFEST"))
	if err != nil {
		t.Fatal(err)
	}
	m2, err := os.ReadFile(filepath.Join(d2, "MANIFEST"))
	if err != nil {
		t.Fatal(err)
	}
	if string(m1) != string(m2) {
		t.Fatal("manifest not deterministic")
	}
}

func TestImportErrors(t *testing.T) {
	if _, err := Import(t.TempDir()); !errors.Is(err, ErrNoManifest) {
		t.Fatalf("empty dir: got %v, want ErrNoManifest", err)
	}

	// Malformed manifest line.
	dir := t.TempDir()
	mustWrite(t, filepath.Join(dir, "MANIFEST"), "garbage-without-tab\n")
	if _, err := Import(dir); !errors.Is(err, ErrBadManifest) {
		t.Fatalf("got %v, want ErrBadManifest", err)
	}

	// Path traversal in manifest is rejected.
	dir2 := t.TempDir()
	mustWrite(t, filepath.Join(dir2, "MANIFEST"), "http://x/a\t../evil.nt\n")
	if _, err := Import(dir2); !errors.Is(err, ErrBadManifest) {
		t.Fatalf("traversal: got %v, want ErrBadManifest", err)
	}

	// Manifest points at a missing homepage.
	dir3 := t.TempDir()
	mustWrite(t, filepath.Join(dir3, "MANIFEST"), "http://x/a\tmissing.nt\n")
	if _, err := Import(dir3); err == nil {
		t.Fatal("missing homepage accepted")
	}

	// Homepage claiming a different identity than the manifest.
	dir4 := t.TempDir()
	if err := os.MkdirAll(filepath.Join(dir4, "people"), 0o755); err != nil {
		t.Fatal(err)
	}
	spoof := `<http://x/b> <http://www.w3.org/1999/02/22-rdf-syntax-ns#type> <http://xmlns.com/foaf/0.1/Person> .` + "\n"
	mustWrite(t, filepath.Join(dir4, "people", "f.nt"), spoof)
	mustWrite(t, filepath.Join(dir4, "MANIFEST"), "http://x/a\tf.nt\n")
	if _, err := Import(dir4); err == nil || !strings.Contains(err.Error(), "declares") {
		t.Fatalf("spoofed homepage: got %v", err)
	}
}

func TestImportWithoutGlobals(t *testing.T) {
	// A corpus without taxonomy/catalog (pure trust network) imports.
	comm := model.NewCommunity(nil)
	if err := comm.SetTrust("http://x/a", "http://x/b", 0.5); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := Export(comm, dir); err != nil {
		t.Fatal(err)
	}
	// Export writes no taxonomy for taxonomy-less communities.
	if _, err := os.Stat(filepath.Join(dir, "taxonomy.nt")); !os.IsNotExist(err) {
		t.Fatal("unexpected taxonomy.nt")
	}
	back, err := Import(dir)
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := back.Trust("http://x/a", "http://x/b"); !ok || v != 0.5 {
		t.Fatalf("trust = %v,%v", v, ok)
	}
}

func TestExportErrors(t *testing.T) {
	comm := model.NewCommunity(nil)
	comm.AddAgent("http://x/a")
	// Export into a path whose parent is a file.
	dir := t.TempDir()
	blocker := filepath.Join(dir, "blocker")
	mustWrite(t, blocker, "i am a file")
	if err := Export(comm, filepath.Join(blocker, "sub")); err == nil {
		t.Fatal("export under a file accepted")
	}
}

func TestImportCorruptGlobals(t *testing.T) {
	// Corrupt taxonomy document.
	dir := t.TempDir()
	if err := os.MkdirAll(filepath.Join(dir, "people"), 0o755); err != nil {
		t.Fatal(err)
	}
	mustWrite(t, filepath.Join(dir, "MANIFEST"), "")
	mustWrite(t, filepath.Join(dir, "taxonomy.nt"), "not rdf at all")
	if _, err := Import(dir); err == nil {
		t.Fatal("corrupt taxonomy accepted")
	}

	// Valid-RDF taxonomy that is not a taxonomy document.
	mustWrite(t, filepath.Join(dir, "taxonomy.nt"),
		"<http://x/a> <http://x/p> <http://x/b> .\n")
	if _, err := Import(dir); err == nil {
		t.Fatal("non-taxonomy document accepted")
	}

	// Corrupt catalog.
	dir2 := t.TempDir()
	mustWrite(t, filepath.Join(dir2, "MANIFEST"), "")
	mustWrite(t, filepath.Join(dir2, "catalog.nt"), "garbage {{{")
	if _, err := Import(dir2); err == nil {
		t.Fatal("corrupt catalog accepted")
	}
}

func TestImportCorruptHomepage(t *testing.T) {
	dir := t.TempDir()
	if err := os.MkdirAll(filepath.Join(dir, "people"), 0o755); err != nil {
		t.Fatal(err)
	}
	mustWrite(t, filepath.Join(dir, "people", "a.nt"), "not rdf")
	mustWrite(t, filepath.Join(dir, "MANIFEST"), "http://x/a\ta.nt\n")
	if _, err := Import(dir); err == nil {
		t.Fatal("corrupt homepage accepted")
	}
	// RDF but no foaf:Person.
	mustWrite(t, filepath.Join(dir, "people", "a.nt"),
		"<http://x/a> <http://x/p> <http://x/b> .\n")
	if _, err := Import(dir); err == nil {
		t.Fatal("personless homepage accepted")
	}
}

func TestImportSkipsBlankManifestLines(t *testing.T) {
	comm := model.NewCommunity(nil)
	if err := comm.SetTrust("http://x/a", "http://x/b", 0.5); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := Export(comm, dir); err != nil {
		t.Fatal(err)
	}
	// Append blank lines to the manifest; import must tolerate them.
	m, err := os.ReadFile(filepath.Join(dir, "MANIFEST"))
	if err != nil {
		t.Fatal(err)
	}
	mustWrite(t, filepath.Join(dir, "MANIFEST"), string(m)+"\n\n  \n")
	back, err := Import(dir)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumAgents() != comm.NumAgents() {
		t.Fatal("blank manifest lines broke import")
	}
}

func TestFileNameStableAndDistinct(t *testing.T) {
	a := fileName("http://x/alice")
	if a != fileName("http://x/alice") {
		t.Fatal("fileName not stable")
	}
	if a == fileName("http://x/bob") {
		t.Fatal("fileName collision for distinct URIs")
	}
	if !strings.HasSuffix(a, ".nt") || strings.Contains(a, "/") {
		t.Fatalf("bad file name %q", a)
	}
}

// Property: export → import preserves community statistics for random
// communities, including ones with a Fig. 1 taxonomy and topic-bearing
// products.
func TestRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		cfg := datagen.SmallScale()
		cfg.Seed = seed
		cfg.Agents = 15
		cfg.Products = 20
		comm, _ := datagen.Generate(cfg)
		dir, err := os.MkdirTemp("", "corpusprop")
		if err != nil {
			return false
		}
		defer os.RemoveAll(dir)
		if err := Export(comm, dir); err != nil {
			return false
		}
		back, err := Import(dir)
		if err != nil {
			return false
		}
		if back.ComputeStats() != comm.ComputeStats() {
			return false
		}
		// Topic descriptors survive (resolved via the taxonomy document).
		for _, pid := range comm.Products() {
			want := comm.Product(pid).Topics
			got := back.Product(pid).Topics
			if len(want) != len(got) {
				return false
			}
			for i := range want {
				if comm.Taxonomy().QualifiedName(want[i]) != back.Taxonomy().QualifiedName(got[i]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

func TestFig1CorpusFixture(t *testing.T) {
	// A hand-built Example 1 community survives the corpus layer.
	tax := taxonomy.Fig1()
	comm := model.NewCommunity(tax)
	alg, _ := tax.Lookup("Books/Science/Mathematics/Pure/Algebra")
	comm.AddProduct(model.Product{ID: "urn:isbn:9780521386326", Title: "Matrix Analysis",
		Topics: []taxonomy.Topic{alg}})
	if err := comm.SetRating("http://x/ai", "urn:isbn:9780521386326", 1); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := Export(comm, dir); err != nil {
		t.Fatal(err)
	}
	back, err := Import(dir)
	if err != nil {
		t.Fatal(err)
	}
	p := back.Product("urn:isbn:9780521386326")
	if p == nil || p.Title != "Matrix Analysis" {
		t.Fatal("product lost")
	}
	if back.Taxonomy().QualifiedName(p.Topics[0]) != "Books/Science/Mathematics/Pure/Algebra" {
		t.Fatal("descriptor lost")
	}
}

func mustWrite(t *testing.T, path, content string) {
	t.Helper()
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}
