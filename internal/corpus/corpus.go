// Package corpus persists a community as a tree of Semantic Web
// documents on the local filesystem — the at-rest form of the paper's
// architecture (§3.1, §4): one N-Triples homepage per agent under
// people/, plus the globally accessible taxonomy.nt and catalog.nt.
//
// A corpus directory is self-contained and re-importable; it is also
// exactly what a web server would publish (semweb.Site serves the same
// document bytes), so exported corpora double as fixtures for crawler
// tests and as an interchange format between installations.
//
// Layout:
//
//	<dir>/taxonomy.nt        the taxonomy C (absent if the community has none)
//	<dir>/catalog.nt         products B with descriptor assignments f
//	<dir>/people/<hash>.nt   one homepage per agent
//	<dir>/MANIFEST           agent-URI → file name index, one "uri\tfile" per line
//
// Homepage file names are derived from a hash of the agent URI: agent
// URIs are not generally valid file names, and the MANIFEST keeps the
// mapping explicit and greppable.
package corpus

import (
	"bufio"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"swrec/internal/foaf"
	"swrec/internal/model"
	"swrec/internal/rdf"
)

const (
	taxonomyFile = "taxonomy.nt"
	catalogFile  = "catalog.nt"
	peopleDir    = "people"
	manifestFile = "MANIFEST"
)

var (
	// ErrNoManifest is returned when a directory lacks the MANIFEST.
	ErrNoManifest = errors.New("corpus: missing MANIFEST")
	// ErrBadManifest wraps malformed manifest lines.
	ErrBadManifest = errors.New("corpus: malformed MANIFEST")
)

// fileName derives a stable file name for an agent URI.
func fileName(id model.AgentID) string {
	sum := sha256.Sum256([]byte(id))
	return hex.EncodeToString(sum[:12]) + ".nt"
}

// Export writes the community to dir, creating it if needed. Existing
// corpus files in dir are overwritten; unrelated files are left alone.
func Export(comm *model.Community, dir string) error {
	if err := os.MkdirAll(filepath.Join(dir, peopleDir), 0o755); err != nil {
		return fmt.Errorf("corpus: mkdir: %w", err)
	}
	if comm.Taxonomy() != nil {
		doc := foaf.MarshalTaxonomy(comm.Taxonomy()).Marshal()
		if err := writeFile(filepath.Join(dir, taxonomyFile), doc); err != nil {
			return err
		}
	}
	if err := writeFile(filepath.Join(dir, catalogFile), foaf.MarshalCatalog(comm).Marshal()); err != nil {
		return err
	}
	var manifest strings.Builder
	for _, id := range comm.Agents() {
		name := fileName(id)
		doc := foaf.MarshalAgent(comm.Agent(id)).Marshal()
		if err := writeFile(filepath.Join(dir, peopleDir, name), doc); err != nil {
			return err
		}
		fmt.Fprintf(&manifest, "%s\t%s\n", id, name)
	}
	return writeFile(filepath.Join(dir, manifestFile), manifest.String())
}

// writeFile writes content atomically enough for a corpus (temp +
// rename).
func writeFile(path, content string) error {
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, []byte(content), 0o644); err != nil {
		return fmt.Errorf("corpus: write %s: %w", path, err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("corpus: rename %s: %w", path, err)
	}
	return nil
}

// Import loads a corpus directory into a fresh community. Homepages are
// applied in manifest order, so re-importing an Export round-trips the
// community exactly (verified by property test).
func Import(dir string) (*model.Community, error) {
	manifest, err := os.Open(filepath.Join(dir, manifestFile))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, fmt.Errorf("%w in %s", ErrNoManifest, dir)
		}
		return nil, fmt.Errorf("corpus: open manifest: %w", err)
	}
	defer manifest.Close()

	comm, err := importGlobals(dir)
	if err != nil {
		return nil, err
	}

	sc := bufio.NewScanner(manifest)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		uri, name, ok := strings.Cut(line, "\t")
		if !ok || uri == "" || name == "" || strings.Contains(name, "/") {
			return nil, fmt.Errorf("%w: line %d: %q", ErrBadManifest, lineNo, line)
		}
		data, err := os.ReadFile(filepath.Join(dir, peopleDir, name))
		if err != nil {
			return nil, fmt.Errorf("corpus: homepage %s: %w", name, err)
		}
		g, err := rdf.ParseString(string(data))
		if err != nil {
			return nil, fmt.Errorf("corpus: homepage %s: %w", name, err)
		}
		h, err := foaf.Unmarshal(g)
		if err != nil {
			return nil, fmt.Errorf("corpus: homepage %s: %w", name, err)
		}
		if h.Agent != model.AgentID(uri) {
			return nil, fmt.Errorf("corpus: homepage %s declares %s, manifest says %s",
				name, h.Agent, uri)
		}
		if err := h.ApplyTo(comm); err != nil {
			return nil, fmt.Errorf("corpus: homepage %s: %w", name, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("corpus: manifest: %w", err)
	}
	if err := comm.Validate(); err != nil {
		return nil, fmt.Errorf("corpus: imported view violates model invariants: %w", err)
	}
	return comm, nil
}

// importGlobals loads taxonomy.nt (optional) and catalog.nt (optional)
// into a fresh community.
func importGlobals(dir string) (*model.Community, error) {
	comm := model.NewCommunity(nil)
	if data, err := os.ReadFile(filepath.Join(dir, taxonomyFile)); err == nil {
		g, err := rdf.ParseString(string(data))
		if err != nil {
			return nil, fmt.Errorf("corpus: taxonomy: %w", err)
		}
		tax, err := foaf.UnmarshalTaxonomy(g)
		if err != nil {
			return nil, fmt.Errorf("corpus: taxonomy: %w", err)
		}
		comm = model.NewCommunity(tax)
	} else if !os.IsNotExist(err) {
		return nil, fmt.Errorf("corpus: taxonomy: %w", err)
	}
	if data, err := os.ReadFile(filepath.Join(dir, catalogFile)); err == nil {
		g, err := rdf.ParseString(string(data))
		if err != nil {
			return nil, fmt.Errorf("corpus: catalog: %w", err)
		}
		if err := foaf.UnmarshalCatalog(g, comm); err != nil {
			return nil, fmt.Errorf("corpus: catalog: %w", err)
		}
	} else if !os.IsNotExist(err) {
		return nil, fmt.Errorf("corpus: catalog: %w", err)
	}
	return comm, nil
}
