package lintaudit

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestParseVetJSON(t *testing.T) {
	in := `# swrec/internal/foo
{
	"swrec/internal/foo": {
		"hotalloc": [
			{"posn": "/repo/internal/foo/foo.go:12:3", "message": "[suppressed] make allocates in hot path"},
			{"posn": "/repo/internal/foo/foo.go:40:7", "message": "fmt.Sprintf reflects and allocates"}
		]
	}
}
# swrec/internal/bar
{
	"swrec/internal/bar": {
		"urikey": []
	}
}
`
	diags, err := ParseVetJSON(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 2 {
		t.Fatalf("got %d diags, want 2", len(diags))
	}
	if !diags[0].Suppressed || diags[0].Line != 12 || diags[0].Analyzer != "hotalloc" {
		t.Errorf("diag[0] = %+v", diags[0])
	}
	if strings.Contains(diags[0].Message, "[suppressed]") {
		t.Errorf("prefix not stripped: %q", diags[0].Message)
	}
	if diags[1].Suppressed {
		t.Errorf("diag[1] wrongly marked suppressed: %+v", diags[1])
	}
}

func TestParseVetJSONBadPosn(t *testing.T) {
	in := `{"p": {"a": [{"posn": "nonsense", "message": "m"}]}}`
	if _, err := ParseVetJSON(strings.NewReader(in)); err == nil {
		t.Fatal("want error for malformed position")
	}
}

func TestAudit(t *testing.T) {
	sups := []Suppression{
		{File: "/r/a.go", Line: 10, Analyzer: "hotalloc", Justified: true},                 // live: diag on same line
		{File: "/r/a.go", Line: 20, Analyzer: "hotalloc", Justified: true},                 // live: diag on line+1
		{File: "/r/a.go", Line: 30, Analyzer: "hotalloc", Justified: true},                 // stale: no diag
		{File: "/r/b.go", Line: 3, Analyzer: "ctxflow", FileScoped: true, Justified: true}, // live: any diag in file
		{File: "/r/c.go", Line: 3, Analyzer: "ctxflow", FileScoped: true, Justified: true}, // stale: none in file
		{File: "/r/a.go", Line: 40, Analyzer: "ghost", Justified: true},                    // stale: unknown analyzer
		{File: "/r/a.go", Line: 50, Analyzer: "hotalloc", Justified: false},                // skipped: inert
	}
	diags := []Diag{
		{File: "/r/a.go", Line: 10, Analyzer: "hotalloc", Suppressed: true},
		{File: "/r/a.go", Line: 21, Analyzer: "hotalloc", Suppressed: true},
		{File: "/r/a.go", Line: 30, Analyzer: "hotalloc", Suppressed: false}, // unsuppressed: not a match
		{File: "/r/b.go", Line: 99, Analyzer: "ctxflow", Suppressed: true},
		{File: "/r/a.go", Line: 31, Analyzer: "ctxflow", Suppressed: true}, // wrong analyzer for a.go:30
	}
	res := Audit(sups, diags, []string{"hotalloc", "ctxflow"})
	if res.Total != 6 {
		t.Errorf("Total = %d, want 6 (inert suppression skipped)", res.Total)
	}
	if res.Live != 3 {
		t.Errorf("Live = %d, want 3", res.Live)
	}
	if len(res.Stale) != 3 {
		t.Fatalf("Stale = %d entries, want 3: %+v", len(res.Stale), res.Stale)
	}
	if res.Stale[0].Line != 30 || !strings.Contains(res.Stale[0].Reason, "no hotalloc diagnostic") {
		t.Errorf("stale[0] = %+v", res.Stale[0])
	}
	if res.Stale[1].Analyzer != "ghost" || !strings.Contains(res.Stale[1].Reason, "not registered") {
		t.Errorf("stale[1] = %+v", res.Stale[1])
	}
	if res.Stale[2].File != "/r/c.go" || !strings.Contains(res.Stale[2].Reason, "anywhere in the file") {
		t.Errorf("stale[2] = %+v", res.Stale[2])
	}
}

func TestScanDir(t *testing.T) {
	dir := t.TempDir()
	write := func(rel, content string) {
		t.Helper()
		path := filepath.Join(dir, rel)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("a.go", `package a

//swrecvet:disable detrand -- file-scoped excuse

func F() {
	x := 1 //nolint:hotalloc,ctxflow -- double excuse
	_ = x
	y := 2 //nolint:goleak
	_ = y
}

// The string below must NOT be scanned as a suppression:
var s = "justify with //nolint:hotalloc -- reason"
`)
	write("a_test.go", "package a\n\nvar t = 1 //nolint:hotalloc -- test files are out of scope\n")
	write("testdata/src/p/p.go", "package p\n\nvar f = 1 //nolint:hotalloc -- fixtures are out of scope\n")

	sups, err := ScanDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for _, s := range sups {
		got = append(got, s.Analyzer)
	}
	// One file-scoped + two from the double nolint + one unjustified.
	want := []string{"detrand", "hotalloc", "ctxflow", "goleak"}
	if len(got) != len(want) {
		t.Fatalf("analyzers = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("analyzers[%d] = %q, want %q", i, got[i], want[i])
		}
	}
	if !sups[0].FileScoped || !sups[0].Justified {
		t.Errorf("sup[0] = %+v, want file-scoped justified", sups[0])
	}
	if sups[3].Justified {
		t.Errorf("sup[3] = %+v, want unjustified", sups[3])
	}
	if !filepath.IsAbs(sups[0].File) {
		t.Errorf("file not absolute: %q", sups[0].File)
	}
}
