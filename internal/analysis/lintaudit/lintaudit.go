// Package lintaudit detects stale suppressions: //nolint and
// //swrecvet:disable comments whose excuse no longer holds, either
// because the named analyzer is no longer registered or because the
// diagnostic it silences no longer fires there.
//
// The mechanism leans on lintutil's audit mode: cmd/lintaudit re-runs
// the whole swrecvet suite with every analyzer's -<name>.audit flag
// set, which makes Suppressions.Report emit suppressed diagnostics
// marked with lintutil.AuditPrefix instead of dropping them. A
// justified suppression under which no marked diagnostic lands is dead
// weight — the code it excused has moved or been fixed — and should be
// deleted before it silences a future, different violation on the same
// line.
//
// The audit flag (rather than an environment variable) matters: flags
// participate in go vet's result caching, so audit runs and normal lint
// runs never poison each other's cache entries.
package lintaudit

import (
	"encoding/json"
	"fmt"
	"go/parser"
	"go/token"
	"io"
	"io/fs"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"swrec/internal/analysis/lintutil"
)

// Suppression is one (comment, analyzer) pair found in the tree. A
// comment naming two analyzers yields two entries.
type Suppression struct {
	File       string // absolute path
	Line       int
	Analyzer   string
	FileScoped bool
	Justified  bool
}

// String renders the suppression the way the audit report prints it.
func (s Suppression) String() string {
	form := "nolint:" + s.Analyzer
	if s.FileScoped {
		form = "swrecvet:disable " + s.Analyzer
	}
	return fmt.Sprintf("%s:%d: %s", s.File, s.Line, form)
}

// ScanDir walks root for non-test, non-fixture Go files and returns
// every suppression directive, justified or not. Test files are skipped
// because the analyzers themselves skip them (lintutil.IsTestFile): a
// suppression there can never match a diagnostic. testdata trees are
// analyzer fixtures exercised by their own unit tests, not by the tree
// lint.
func ScanDir(root string) ([]Suppression, error) {
	var out []Suppression
	fset := token.NewFileSet()
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			switch d.Name() {
			case "testdata", "vendor", "bin", ".git":
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		abs, err := filepath.Abs(path)
		if err != nil {
			return err
		}
		// Comments must come from the parser, not a line scanner:
		// analyzer sources embed suppression syntax inside diagnostic
		// message string literals, which are not comments.
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return fmt.Errorf("lintaudit: parse %s: %w", path, err)
		}
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				d, ok := lintutil.ParseDirective(c.Text)
				if !ok {
					continue
				}
				line := fset.Position(c.Pos()).Line
				for _, a := range d.Analyzers {
					out = append(out, Suppression{
						File:       abs,
						Line:       line,
						Analyzer:   a,
						FileScoped: d.FileScoped,
						Justified:  d.Justified,
					})
				}
			}
		}
		return nil
	})
	return out, err
}

// Diag is one diagnostic from an audit-mode vet run.
type Diag struct {
	File       string
	Line       int
	Analyzer   string
	Suppressed bool // carried the lintutil.AuditPrefix marker
	Message    string
}

// ParseVetJSON parses `go vet -json` output: per-package "# pkg"
// comment lines followed by one JSON object mapping package path →
// analyzer → diagnostics.
func ParseVetJSON(r io.Reader) ([]Diag, error) {
	raw, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	var kept []string
	for _, line := range strings.Split(string(raw), "\n") {
		if strings.HasPrefix(strings.TrimSpace(line), "#") {
			continue
		}
		kept = append(kept, line)
	}
	dec := json.NewDecoder(strings.NewReader(strings.Join(kept, "\n")))
	var out []Diag
	for {
		var obj map[string]map[string][]struct {
			Posn    string `json:"posn"`
			Message string `json:"message"`
		}
		if err := dec.Decode(&obj); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lintaudit: parse vet json: %w", err)
		}
		for _, analyzers := range obj {
			for name, diags := range analyzers {
				for _, d := range diags {
					file, line, perr := splitPosn(d.Posn)
					if perr != nil {
						return nil, perr
					}
					msg := d.Message
					suppressed := strings.HasPrefix(msg, lintutil.AuditPrefix)
					if suppressed {
						msg = strings.TrimPrefix(msg, lintutil.AuditPrefix)
					}
					out = append(out, Diag{
						File:       file,
						Line:       line,
						Analyzer:   name,
						Suppressed: suppressed,
						Message:    msg,
					})
				}
			}
		}
	}
	return out, nil
}

// splitPosn parses "path/file.go:line:col" (path may contain colons on
// no platform we support, but split from the right regardless).
func splitPosn(posn string) (string, int, error) {
	parts := strings.Split(posn, ":")
	if len(parts) < 3 {
		return "", 0, fmt.Errorf("lintaudit: bad position %q", posn)
	}
	line, err := strconv.Atoi(parts[len(parts)-2])
	if err != nil {
		return "", 0, fmt.Errorf("lintaudit: bad position %q", posn)
	}
	return strings.Join(parts[:len(parts)-2], ":"), line, nil
}

// Stale is a suppression the audit condemns, with the reason.
type Stale struct {
	Suppression
	Reason string
}

// Result is the audit outcome.
type Result struct {
	Total int // justified suppressions audited
	Live  int
	Stale []Stale
}

// Audit cross-references the tree's suppressions against an audit-mode
// diagnostic stream. known is the registered analyzer name list
// (registry.Names()). Unjustified suppressions are skipped: they are
// inert by design and the normal lint run already keeps their
// diagnostics visible.
func Audit(sups []Suppression, diags []Diag, known []string) Result {
	knownSet := make(map[string]bool, len(known))
	for _, n := range known {
		knownSet[n] = true
	}
	// analyzer → file → line set of suppressed diagnostics.
	hits := make(map[string]map[string]map[int]bool)
	for _, d := range diags {
		if !d.Suppressed {
			continue
		}
		if hits[d.Analyzer] == nil {
			hits[d.Analyzer] = make(map[string]map[int]bool)
		}
		if hits[d.Analyzer][d.File] == nil {
			hits[d.Analyzer][d.File] = make(map[int]bool)
		}
		hits[d.Analyzer][d.File][d.Line] = true
	}
	var res Result
	for _, s := range sups {
		if !s.Justified {
			continue
		}
		res.Total++
		if !knownSet[s.Analyzer] {
			res.Stale = append(res.Stale, Stale{s, fmt.Sprintf("analyzer %q is not registered", s.Analyzer)})
			continue
		}
		byFile := hits[s.Analyzer][s.File]
		live := false
		if s.FileScoped {
			live = len(byFile) > 0
		} else {
			// A line suppression covers its own line and the next.
			live = byFile[s.Line] || byFile[s.Line+1]
		}
		if live {
			res.Live++
			continue
		}
		reason := fmt.Sprintf("no %s diagnostic fires on lines %d-%d anymore", s.Analyzer, s.Line, s.Line+1)
		if s.FileScoped {
			reason = fmt.Sprintf("no %s diagnostic fires anywhere in the file anymore", s.Analyzer)
		}
		res.Stale = append(res.Stale, Stale{s, reason})
	}
	sort.Slice(res.Stale, func(i, j int) bool {
		if res.Stale[i].File != res.Stale[j].File {
			return res.Stale[i].File < res.Stale[j].File
		}
		return res.Stale[i].Line < res.Stale[j].Line
	})
	return res
}
