package expvarname_test

import (
	"testing"

	"swrec/internal/analysis/analyzertest"
	"swrec/internal/analysis/expvarname"
)

func TestExpvarname(t *testing.T) {
	analyzertest.Run(t, expvarname.Analyzer, "swrec/internal/resilience")
}

// TestStrategyMap covers the strategy ladder's counter map: the published
// map name must carry the prefix, while the per-rung keys added inside it
// are not published names.
func TestStrategyMap(t *testing.T) {
	analyzertest.Run(t, expvarname.Analyzer, "swrec/internal/strategy")
}

// TestAPIMap covers the API layer's per-endpoint request map
// (swrec_http): the published map names carry the prefix while the
// dynamic <endpoint>_* keys added inside them are not published names.
func TestAPIMap(t *testing.T) {
	analyzertest.Run(t, expvarname.Analyzer, "swrec/internal/api")
}

// TestRecoveryMap covers the recovery ladder's counter map
// (swrec_recovery): the published map name must carry the prefix, while
// the last_* gauges and per-source keys set inside it are not published
// names.
func TestRecoveryMap(t *testing.T) {
	analyzertest.Run(t, expvarname.Analyzer, "swrec/internal/checkpoint")
}

// TestOutOfScopePackage guards the false-positive direction: code
// outside swrec/internal (cmd/, examples/) may publish what it likes.
func TestOutOfScopePackage(t *testing.T) {
	analyzertest.Run(t, expvarname.Analyzer, "swrec/cmd/tool")
}
