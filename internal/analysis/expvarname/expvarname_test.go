package expvarname_test

import (
	"testing"

	"swrec/internal/analysis/analyzertest"
	"swrec/internal/analysis/expvarname"
)

func TestExpvarname(t *testing.T) {
	analyzertest.Run(t, expvarname.Analyzer, "swrec/internal/resilience")
}

// TestOutOfScopePackage guards the false-positive direction: code
// outside swrec/internal (cmd/, examples/) may publish what it likes.
func TestOutOfScopePackage(t *testing.T) {
	analyzertest.Run(t, expvarname.Analyzer, "swrec/cmd/tool")
}
