// Package expvar is a fixture stub (path-based type identity).
package expvar

type Var interface{ String() string }

type Map struct{}

func (m *Map) Add(key string, delta int64) {}

func (m *Map) Set(key string, av Var) {}

func (m *Map) String() string { return "" }

type Int struct{}

func (i *Int) Add(delta int64) {}

func (i *Int) Set(v int64) {}

func (i *Int) String() string { return "" }

func NewMap(name string) *Map { return &Map{} }

func NewInt(name string) *Int { return &Int{} }

func NewFloat(name string) *Int { return &Int{} }

func NewString(name string) *Int { return &Int{} }

func Publish(name string, v Var) {}
