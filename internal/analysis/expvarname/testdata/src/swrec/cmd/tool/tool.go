// Fixture guard: binaries are outside the swrec_ naming convention.
package tool

import "expvar"

var uptime = expvar.NewInt("uptime_seconds")
