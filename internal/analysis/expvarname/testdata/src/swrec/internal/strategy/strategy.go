// Fixture for expvarname: the strategy ladder's per-rung counter map,
// plus the name shapes a rung-local refactor might slip in.
package strategy

import "expvar"

var stats = expvar.NewMap("swrec_strategy")

var rungStats = expvar.NewMap("strategy_rungs") // want `expvar name "strategy_rungs" lacks the "swrec_" prefix`

var exhausted = expvar.NewInt("ladder_exhausted") // want `expvar name "ladder_exhausted" lacks the "swrec_" prefix`

var okExhausted = expvar.NewInt("swrec_ladder_exhausted")

// perRungKeys inside the map are not published names (false-positive
// guard): the walk records <procedure>_attempt/<procedure>_success keys.
func record(procedure string) {
	stats.Add(procedure+"_attempt", 1)
	stats.Add(procedure+"_success", 1)
}
