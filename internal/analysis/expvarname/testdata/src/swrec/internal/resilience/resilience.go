// Fixture for expvarname: published-name shapes from the engine,
// ingest, and resilience metric maps behind /v1/metrics.
package resilience

import "expvar"

var stats = expvar.NewMap("swrec_resilience")

var stray = expvar.NewMap("resilience") // want `expvar name "resilience" lacks the "swrec_" prefix`

var depth = expvar.NewInt("queue_depth") // want `expvar name "queue_depth" lacks the "swrec_" prefix`

var okInt = expvar.NewInt("swrec_queue_depth")

func publishAll() {
	expvar.Publish("breaker_states", stats) // want `expvar name "breaker_states" lacks the "swrec_" prefix`
	expvar.Publish("swrec_breaker_states", stats)
}

// legacyName keeps a pre-convention dashboard alive: justified
// suppression is the audit trail.
var legacyName = expvar.NewMap("edbtw_compat") //nolint:expvarname -- pre-v1 dashboard scrapes this exact name

// dynamicName is out of static reach (false-positive guard).
func dynamicName(component string) *expvar.Map {
	return expvar.NewMap(component)
}

// keysInsideAMap are not published names (false-positive guard).
func count() {
	stats.Add("retries", 1)
}
