// Fixture for expvarname: the API layer's per-endpoint request map.
// The map name itself must carry the swrec_ prefix; the dynamic
// per-endpoint keys composed inside it (<endpoint>_requests,
// <endpoint>_le_10ms, ...) are map keys, not published names, and must
// not trip the analyzer.
package api

import "expvar"

var apiStats = expvar.NewMap("swrec_api")

var httpStats = expvar.NewMap("swrec_http")

var badHTTPStats = expvar.NewMap("http_requests") // want `expvar name "http_requests" lacks the "swrec_" prefix`

var badLatency = expvar.NewInt("api_latency_ns") // want `expvar name "api_latency_ns" lacks the "swrec_" prefix`

// record mirrors the real handler's accounting: dynamic keys inside a
// prefixed map are fine, as is a dynamic first argument to Publish-like
// constructors (out of static reach).
func record(endpoint, bucket string) {
	apiStats.Add("requests", 1)
	httpStats.Add(endpoint+"_requests", 1)
	httpStats.Add(endpoint+"_errors", 1)
	httpStats.Add(endpoint+"_"+bucket, 1)
}
