// Fixture for expvarname: the recovery ladder's expvar map, plus the
// name shapes a recovery-path refactor might slip in.
package checkpoint

import "expvar"

var recoveryStats = expvar.NewMap("swrec_recovery")

var ladderStats = expvar.NewMap("recovery_ladder") // want `expvar name "recovery_ladder" lacks the "swrec_" prefix`

var lastRungBad = expvar.NewInt("recovery_last_rung") // want `expvar name "recovery_last_rung" lacks the "swrec_" prefix`

// gauge keys set inside the published map are not published names
// (false-positive guard): the ladder records last_rung/last_epoch/
// last_seq/last_load_ms gauges and per-source counters.
func record(source string, rung int64) {
	var lastRung expvar.Int
	lastRung.Set(rung)
	recoveryStats.Set("last_rung", &lastRung)
	recoveryStats.Add("recoveries", 1)
	recoveryStats.Add("source_"+source, 1)
}
