// Package expvarname enforces the metrics-naming convention from the
// serving and durability PRs: every expvar published by swrec library
// code lives under a "swrec_"-prefixed name (swrec_engine, swrec_api,
// swrec_ingest, swrec_resilience, ...). /v1/metrics exposes the whole
// expvar namespace, so an unprefixed name collides with the runtime's
// own vars and breaks dashboards that scrape by prefix.
package expvarname

import (
	"go/ast"
	"go/types"
	"strconv"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
	"swrec/internal/analysis/lintutil"
)

const doc = `reports expvar names published without the swrec_ prefix

/v1/metrics serves the full expvar namespace; swrec's own maps and
vars must be grouped under swrec_* so they neither collide with
runtime vars nor escape prefix-scraping dashboards.`

// Analyzer is the expvarname pass.
var Analyzer = &analysis.Analyzer{
	Name:     "expvarname",
	Doc:      doc,
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

var (
	packages string
	prefix   string
)

func init() {
	lintutil.RegisterAuditFlag(&Analyzer.Flags)
	Analyzer.Flags.StringVar(&packages, "packages",
		"swrec/internal",
		"comma-separated import-path prefixes the convention applies to")
	Analyzer.Flags.StringVar(&prefix, "prefix", "swrec_",
		"required name prefix for published expvars")
}

// constructors are the expvar package-level functions whose first
// argument is the published name.
var constructors = map[string]bool{
	"NewMap": true, "NewInt": true, "NewFloat": true, "NewString": true, "Publish": true,
}

func run(pass *analysis.Pass) (any, error) {
	if !lintutil.PkgMatch(pass.Pkg.Path(), packages) {
		return nil, nil
	}
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	sup := lintutil.New(pass, "expvarname")

	nodeFilter := []ast.Node{(*ast.CallExpr)(nil)}
	ins.WithStack(nodeFilter, func(n ast.Node, push bool, stack []ast.Node) bool {
		if !push {
			return false
		}
		if lintutil.IsTestFile(pass, stack[0].(*ast.File)) {
			return false
		}
		call := n.(*ast.CallExpr)
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || !constructors[sel.Sel.Name] {
			return true
		}
		fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
		if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "expvar" {
			return true
		}
		if len(call.Args) == 0 {
			return true
		}
		lit, ok := call.Args[0].(*ast.BasicLit)
		if !ok {
			return true // dynamic name: out of static reach
		}
		name, err := strconv.Unquote(lit.Value)
		if err != nil || strings.HasPrefix(name, prefix) {
			return true
		}
		sup.Report(lit.Pos(), "expvar name "+strconv.Quote(name)+" lacks the "+strconv.Quote(prefix)+" prefix: /v1/metrics groups swrec metrics by that prefix (//nolint:expvarname -- reason to override)")
		return true
	})
	return nil, nil
}
