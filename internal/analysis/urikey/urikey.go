// Package urikey enforces the interned data model of ROADMAP item 1:
// agents and products are identified by URI strings (model.AgentID,
// model.ProductID), and every map keyed by one pays string hashing and
// retains the full URI for the map's lifetime. The hot packages key
// their per-agent and per-product state on the dense ordinals
// model.Ord maintains; this analyzer fails `make lint` when a map in
// one of them regresses to a URI-string key.
//
// urikey started advisory, inventorying the un-migrated sites into a
// committed LINT_urikey.txt baseline. The interning migration burned
// that baseline to empty, deleted it, and promoted the analyzer to
// enforced — the same lifecycle any future advisory pass should follow.
package urikey

import (
	"go/ast"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
	"swrec/internal/analysis/lintutil"
)

const doc = `forbids maps keyed by URI string types in the hot packages

model.AgentID and model.ProductID are URI strings: maps keyed by them
hash and retain full URIs. The hot packages key per-agent/per-product
state on dense ordinals (model.Ord); resolve the URI once at the
boundary and carry the ordinal.`

// Analyzer is the urikey pass.
var Analyzer = &analysis.Analyzer{
	Name:     "urikey",
	Doc:      doc,
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

var (
	keys string
	pkgs string
)

func init() {
	lintutil.RegisterAuditFlag(&Analyzer.Flags)
	Analyzer.Flags.StringVar(&keys, "keys",
		"swrec/internal/model.AgentID,swrec/internal/model.ProductID",
		"comma-separated pkgpath.TypeName list of URI-string key types")
	Analyzer.Flags.StringVar(&pkgs, "pkgs",
		"swrec/internal/core,swrec/internal/engine,swrec/internal/trust,swrec/internal/cf,swrec/internal/profile",
		"comma-separated import-path prefixes the interned data model covers")
}

func run(pass *analysis.Pass) (any, error) {
	if !lintutil.PkgMatch(pass.Pkg.Path(), pkgs) {
		return nil, nil
	}
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	sup := lintutil.New(pass, "urikey")

	nodeFilter := []ast.Node{(*ast.MapType)(nil)}
	ins.WithStack(nodeFilter, func(n ast.Node, push bool, stack []ast.Node) bool {
		if !push {
			return true
		}
		if lintutil.IsTestFile(pass, stack[0].(*ast.File)) {
			return false
		}
		mt := n.(*ast.MapType)
		tv, ok := pass.TypesInfo.Types[mt.Key]
		if !ok {
			return true
		}
		if name := uriKey(tv.Type); name != "" {
			sup.Report(mt.Pos(), "map keyed by URI string "+name+": hot packages key on dense ordinals (model.Ord) — resolve the URI once at the boundary and carry the ordinal")
		}
		return true
	})
	return nil, nil
}

// uriKey returns the qualified name when t is a configured URI key
// type, else "".
func uriKey(t types.Type) string {
	n, ok := types.Unalias(t).(*types.Named)
	if !ok || n.Obj() == nil || n.Obj().Pkg() == nil {
		return ""
	}
	full := n.Obj().Pkg().Path() + "." + n.Obj().Name()
	for _, want := range strings.Split(keys, ",") {
		if strings.TrimSpace(want) == full {
			return full
		}
	}
	return ""
}
