// Package urikey is the interning inventory behind ROADMAP item 1:
// agents and products are identified by URI strings (model.AgentID,
// model.ProductID), and every map keyed by one pays string hashing and
// retains the full URI for the map's lifetime. The compiled-matrix work
// (profmat) already interns to dense ordinals via model.Ord; this
// analyzer inventories the map sites in the hot packages that have not
// migrated yet.
//
// Unlike its siblings, urikey is advisory: without -urikey.report it
// emits nothing, so `make lint` stays clean while the sites remain
// un-migrated. `make lint-urikey` runs it in report mode and
// regenerates LINT_urikey.txt, the committed baseline the migration
// burns down.
package urikey

import (
	"go/ast"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
	"swrec/internal/analysis/lintutil"
)

const doc = `inventories maps keyed by URI string types (advisory; enable with -urikey.report)

model.AgentID and model.ProductID are URI strings: maps keyed by them
hash and retain full URIs. Dense ordinals (model.Ord) are cheaper in
the hot packages. Run via make lint-urikey to regenerate the
LINT_urikey.txt baseline; silent in normal lint runs.`

// Analyzer is the urikey pass.
var Analyzer = &analysis.Analyzer{
	Name:     "urikey",
	Doc:      doc,
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

var (
	report bool
	keys   string
	pkgs   string
)

func init() {
	lintutil.RegisterAuditFlag(&Analyzer.Flags)
	Analyzer.Flags.BoolVar(&report, "report", false,
		"emit the inventory (default: advisory-silent so make lint stays clean)")
	Analyzer.Flags.StringVar(&keys, "keys",
		"swrec/internal/model.AgentID,swrec/internal/model.ProductID",
		"comma-separated pkgpath.TypeName list of URI-string key types")
	Analyzer.Flags.StringVar(&pkgs, "pkgs",
		"swrec/internal/core,swrec/internal/engine,swrec/internal/trust,swrec/internal/cf,swrec/internal/profile",
		"comma-separated import-path prefixes inventoried for interning")
}

func run(pass *analysis.Pass) (any, error) {
	if !report || !lintutil.PkgMatch(pass.Pkg.Path(), pkgs) {
		return nil, nil
	}
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	sup := lintutil.New(pass, "urikey")

	nodeFilter := []ast.Node{(*ast.MapType)(nil)}
	ins.WithStack(nodeFilter, func(n ast.Node, push bool, stack []ast.Node) bool {
		if !push {
			return true
		}
		if lintutil.IsTestFile(pass, stack[0].(*ast.File)) {
			return false
		}
		mt := n.(*ast.MapType)
		tv, ok := pass.TypesInfo.Types[mt.Key]
		if !ok {
			return true
		}
		if name := uriKey(tv.Type); name != "" {
			sup.Report(mt.Pos(), "map keyed by URI string "+name+": interning candidate — key by dense ordinal (model.Ord) to avoid hashing and retaining full URIs (ROADMAP item 1)")
		}
		return true
	})
	return nil, nil
}

// uriKey returns the qualified name when t is a configured URI key
// type, else "".
func uriKey(t types.Type) string {
	n, ok := types.Unalias(t).(*types.Named)
	if !ok || n.Obj() == nil || n.Obj().Pkg() == nil {
		return ""
	}
	full := n.Obj().Pkg().Path() + "." + n.Obj().Name()
	for _, want := range strings.Split(keys, ",") {
		if strings.TrimSpace(want) == full {
			return full
		}
	}
	return ""
}
