// Package cf is in the inventoried scope and full of URI-keyed maps,
// but carries zero want annotations: it may only be analyzed with
// report mode off, proving the advisory default emits nothing.
package cf

import "swrec/internal/model"

// Profiles pins several URI-keyed sites.
type Profiles struct {
	ByAgent   map[model.AgentID]float64
	ByProduct map[model.ProductID]int32
}

// Build allocates more of them.
func Build() map[model.AgentID]bool {
	return make(map[model.AgentID]bool)
}
