// Package cf is in the enforced scope: with no flags set, every
// URI-keyed map here must be a diagnostic — pinning the promotion from
// advisory inventory to enforced invariant.
package cf

import "swrec/internal/model"

// Profiles pins several URI-keyed sites.
type Profiles struct {
	ByAgent   map[model.AgentID]float64 // want `map keyed by URI string swrec/internal/model\.AgentID`
	ByProduct map[model.ProductID]int32 // want `map keyed by URI string swrec/internal/model\.ProductID`
}

// Build allocates more of them.
func Build() map[model.AgentID]bool { // want `map keyed by URI string swrec/internal/model\.AgentID`
	return make(map[model.AgentID]bool) // want `map keyed by URI string swrec/internal/model\.AgentID`
}
