// Package trust exercises the urikey inventory: every syntactic
// map-type site keyed by a URI string type is listed; ordinal-keyed and
// plain-string-keyed maps are not.
package trust

import "swrec/internal/model"

// Ranks pins a URI-keyed field.
type Ranks struct {
	ByAgent   map[model.AgentID]float64 // want `map keyed by URI string swrec/internal/model\.AgentID`
	ByProduct map[model.ProductID]int   // want `map keyed by URI string swrec/internal/model\.ProductID`
	ByOrd     map[model.Ord]float64
	ByRaw     map[string]float64
}

// Build allocates one more URI-keyed site.
func Build(n int) map[model.AgentID]bool { // want `map keyed by URI string swrec/internal/model\.AgentID`
	seen := make(map[model.AgentID]bool, n) // want `map keyed by URI string swrec/internal/model\.AgentID`
	return seen
}

// Migrated documents a deliberate keep; the justified suppression
// silences the inventory line, and the unjustified one below stays
// visible.
func Migrated() {
	idx := make(map[model.AgentID]int) //nolint:urikey -- fixture: boundary map, interning happens one layer below
	// No "-- reason" clause: inert, the diagnostic keeps firing.
	//nolint:urikey
	raw := make(map[model.ProductID]int) // want `map keyed by URI string swrec/internal/model\.ProductID`
	_, _ = idx, raw
}
