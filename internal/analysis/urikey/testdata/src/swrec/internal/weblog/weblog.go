// Package weblog is the scope guard: URI-keyed maps outside the
// inventoried packages are not listed.
package weblog

import "swrec/internal/model"

// Hits is URI-keyed but out of scope — silent.
var Hits map[model.AgentID]int
