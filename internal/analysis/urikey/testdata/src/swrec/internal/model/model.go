// Package model is a fixture stub exporting the URI-shaped key types.
package model

// AgentID is a URI-shaped agent key.
type AgentID string

// ProductID is a URI-shaped product key.
type ProductID string

// Ord is the dense ordinal the migration interns to.
type Ord int32
