package urikey_test

import (
	"testing"

	"swrec/internal/analysis/analyzertest"
	"swrec/internal/analysis/urikey"
)

func setReport(t *testing.T, v string) {
	t.Helper()
	if err := urikey.Analyzer.Flags.Set("report", v); err != nil {
		t.Fatal(err)
	}
}

// TestInventory runs in report mode: every syntactic map site keyed by
// a URI string type is listed; ordinal- and raw-string-keyed maps are
// not.
func TestInventory(t *testing.T) {
	setReport(t, "true")
	defer setReport(t, "false")
	analyzertest.Run(t, urikey.Analyzer, "swrec/internal/trust")
}

// TestOutOfScope guards scoping in report mode: packages outside the
// inventory list stay silent.
func TestOutOfScope(t *testing.T) {
	setReport(t, "true")
	defer setReport(t, "false")
	analyzertest.Run(t, urikey.Analyzer, "swrec/internal/weblog")
}

// TestAdvisoryDefault is the make-lint-stays-clean guarantee: without
// -urikey.report the analyzer emits nothing, even on an in-scope
// package full of URI-keyed maps (the cf fixture carries zero want
// annotations, so any emission fails the run).
func TestAdvisoryDefault(t *testing.T) {
	setReport(t, "false")
	analyzertest.Run(t, urikey.Analyzer, "swrec/internal/cf")
}
