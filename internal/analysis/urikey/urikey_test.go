package urikey_test

import (
	"testing"

	"swrec/internal/analysis/analyzertest"
	"swrec/internal/analysis/urikey"
)

// TestEnforced: every syntactic map site keyed by a URI string type is
// reported; ordinal- and raw-string-keyed maps are not.
func TestEnforced(t *testing.T) {
	analyzertest.Run(t, urikey.Analyzer, "swrec/internal/trust")
}

// TestOutOfScope guards scoping: packages outside the interned-model
// list stay silent.
func TestOutOfScope(t *testing.T) {
	analyzertest.Run(t, urikey.Analyzer, "swrec/internal/weblog")
}

// TestEnforcedByDefault pins the promotion from advisory to enforced:
// with no flags set, URI-keyed maps in an in-scope package are
// diagnostics, not a silent inventory.
func TestEnforcedByDefault(t *testing.T) {
	analyzertest.Run(t, urikey.Analyzer, "swrec/internal/cf")
}
