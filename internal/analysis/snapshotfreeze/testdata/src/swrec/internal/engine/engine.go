// Package engine is a fixture stub AND the builder-exemption proof:
// engine owns the pre-publication phase, so it mutates communities and
// snapshots freely with zero diagnostics expected in this file.
package engine

import "swrec/internal/model"

// Snapshot is the published epoch handle.
type Snapshot struct {
	Comm *model.Community
}

// Publish mutates its input while building — allowed: engine is in the
// builder allow-list.
func Publish(c *model.Community, id model.AgentID) *Snapshot {
	c.SetTrust(id, id, 1)
	a := c.Agent(id)
	a.Norm = 1
	a.MarkDirty()
	s := &Snapshot{}
	s.Comm = c
	return s
}
