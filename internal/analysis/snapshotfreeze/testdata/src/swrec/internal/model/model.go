// Package model is a fixture stub: path-based type identity makes it
// stand in for the real swrec/internal/model.
package model

// AgentID is a URI-shaped agent key.
type AgentID string

// ProductID is a URI-shaped product key.
type ProductID string

// Agent mirrors the real agent: exported trust and rating maps.
type Agent struct {
	ID      AgentID
	Trust   map[AgentID]float64
	Ratings map[ProductID]float64
	Norm    float64
	dirty   bool
}

// MarkDirty flags the agent for recompilation.
func (a *Agent) MarkDirty() { a.dirty = true }

// Community is the published graph.
type Community struct {
	agents map[AgentID]*Agent
}

// NewCommunity builds an empty community.
func NewCommunity() *Community {
	return &Community{agents: make(map[AgentID]*Agent)}
}

// Agent returns the agent for id, creating it on demand.
func (c *Community) Agent(id AgentID) *Agent {
	a := c.agents[id]
	if a == nil {
		a = &Agent{ID: id, Trust: map[AgentID]float64{}, Ratings: map[ProductID]float64{}}
		c.agents[id] = a
	}
	return a
}

// AddAgent inserts a prebuilt agent.
func (c *Community) AddAgent(a *Agent) { c.agents[a.ID] = a }

// SetTrust sets a trust edge.
func (c *Community) SetTrust(from, to AgentID, w float64) {
	c.Agent(from).Trust[to] = w
}

// Clone deep-copies the community.
func (c *Community) Clone() *Community {
	out := NewCommunity()
	for id, a := range c.agents {
		cp := *a
		out.agents[id] = &cp
	}
	return out
}
