// Package consumer exercises snapshotfreeze from outside the builder
// allow-list: writes through published values must be reported, writes
// through locally built values must not.
package consumer

import (
	"swrec/internal/engine"
	"swrec/internal/model"
	"swrec/internal/profmat"
)

// Poison writes through a published snapshot in every shape the
// analyzer knows: mutator method, map write, field write, inc/dec,
// builtin delete.
func Poison(snap *engine.Snapshot, id model.AgentID, p model.ProductID) {
	snap.Comm.SetTrust(id, id, 1) // want `SetTrust mutates frozen swrec/internal/model\.Community`
	a := snap.Comm.Agent(id)
	a.Ratings[p] = 5     // want `write through frozen swrec/internal/model\.Agent`
	a.Norm++             // want `write through frozen swrec/internal/model\.Agent`
	a.MarkDirty()        // want `MarkDirty mutates frozen swrec/internal/model\.Agent`
	delete(a.Ratings, p) // want `delete mutates frozen swrec/internal/model\.Agent`
	delete(a.Trust, id)  // want `delete mutates frozen swrec/internal/model\.Agent`
}

// Scribble writes a compiled matrix row in place.
func Scribble(m *profmat.Matrix, i int) {
	m.Rows[i].Norm = 0 // want `write through frozen swrec/internal/profmat\.Row`
}

// Fresh builds its own community: the whole function is the
// pre-publication phase and must stay silent.
func Fresh(id model.AgentID, p model.ProductID) *model.Community {
	c := model.NewCommunity()
	c.SetTrust(id, id, 1)
	a := c.Agent(id)
	a.Ratings[p] = 5
	a.MarkDirty()
	lit := &model.Agent{ID: id, Ratings: map[model.ProductID]float64{}}
	lit.Ratings[p] = 1
	c.AddAgent(lit)
	return c
}

// newWeighted is a tuple-returning constructor shape.
func newWeighted() (*model.Community, error) { return model.NewCommunity(), nil }

// FreshTuple builds via a tuple-returning constructor — silent: the
// single RHS classifies every LHS.
func FreshTuple(id model.AgentID) {
	c, err := newWeighted()
	if err != nil {
		return
	}
	c.SetTrust(id, id, 1)
}

// CloneAndEdit takes the sanctioned route: copy, then mutate the copy.
func CloneAndEdit(snap *engine.Snapshot, id model.AgentID) *model.Community {
	c := snap.Comm.Clone()
	c.SetTrust(id, id, 0.5)
	return c
}

// Rebind only rebinds local variables — never a mutation.
func Rebind(snap *engine.Snapshot, id model.AgentID) {
	a := snap.Comm.Agent(id)
	a = nil
	_ = a
	snap = nil
	_ = snap
}

// Holdout is the mutate-and-restore pattern: the justified suppression
// silences it, the unjustified one right below stays visible.
func Holdout(snap *engine.Snapshot, id model.AgentID, p model.ProductID, v float64) {
	a := snap.Comm.Agent(id)
	a.Ratings[p] = v //nolint:snapshotfreeze -- fixture: single-threaded holdout harness restores the rating before anyone else reads
	// No "-- reason" clause: inert, the diagnostic keeps firing.
	//nolint:snapshotfreeze
	a.Norm = 0 // want `write through frozen swrec/internal/model\.Agent`
}
