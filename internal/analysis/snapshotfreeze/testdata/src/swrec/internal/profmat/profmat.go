// Package profmat is a fixture stub for the compiled-matrix types.
package profmat

// Row is one compiled profile row.
type Row struct {
	Keys []int32
	Vals []float64
	Norm float64
}

// Matrix is the compiled rating/trust matrix.
type Matrix struct {
	Rows []Row
}
