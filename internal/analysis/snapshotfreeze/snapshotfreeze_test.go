package snapshotfreeze_test

import (
	"testing"

	"swrec/internal/analysis/analyzertest"
	"swrec/internal/analysis/snapshotfreeze"
)

// TestConsumer checks the positive direction: every write shape through
// a published community/snapshot/matrix outside the builder packages is
// reported, and locally built values are exempt.
func TestConsumer(t *testing.T) {
	analyzertest.Run(t, snapshotfreeze.Analyzer, "swrec/internal/consumer")
}

// TestBuilderPackage guards the false-positive direction: the engine
// stub mutates communities freely while building and must produce zero
// diagnostics because engine is in the builder allow-list.
func TestBuilderPackage(t *testing.T) {
	analyzertest.Run(t, snapshotfreeze.Analyzer, "swrec/internal/engine")
}
