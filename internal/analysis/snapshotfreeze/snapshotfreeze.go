// Package snapshotfreeze enforces the publication side of the epoch
// contract that snapshotpin enforces on the retention side: once a
// *model.Community (or an engine.Snapshot, or a compiled
// profmat.Matrix) has been handed to Engine.Swap / SwapDelta or a
// checkpoint encoder, it is frozen — every reader may hold it lock-free
// precisely because nothing writes it anymore. A field store, map
// write, or slice-element write through a frozen value outside the
// builder packages is a data race against every concurrent reader of
// the published epoch, even when the race detector happens not to see
// it.
//
// This is the go/ast + go/types approximation of the SSA formulation
// ("no store whose base is reachable from a Swap operand"): outside the
// builder packages that own the pre-publication phase
// (model/engine/ingest/checkpoint/...), any write whose left-hand chain
// passes through a frozen type is reported, unless the chain provably
// roots in a locally built value (assigned in the same function from a
// composite literal, a New*/Clone/Copy constructor, or an accessor on
// such a value) — local construction is the pre-publication phase by
// definition. Mutating method calls (SetTrust, AddAgent, Merge, ...) on
// frozen receivers are treated as writes.
//
// Legitimate exceptions — the mutate-and-restore holdout trick in the
// experiment harnesses is the canonical one — document themselves with
// //nolint:snapshotfreeze -- reason.
package snapshotfreeze

import (
	"go/ast"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
	"swrec/internal/analysis/lintutil"
)

const doc = `reports writes through a frozen snapshot type outside the builder packages

After a community, snapshot, or compiled matrix is published via
Engine.Swap or encoded into a checkpoint, readers hold it lock-free.
Writing through it afterwards is a silent data race. Build a fresh
value and swap it in instead, or justify the exception (for example a
mutate-and-restore evaluation holdout) with
//nolint:snapshotfreeze -- reason.`

// Analyzer is the snapshotfreeze pass.
var Analyzer = &analysis.Analyzer{
	Name:     "snapshotfreeze",
	Doc:      doc,
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

var (
	frozen   string
	allow    string
	mutators string
)

func init() {
	lintutil.RegisterAuditFlag(&Analyzer.Flags)
	Analyzer.Flags.StringVar(&frozen, "types",
		"swrec/internal/model.Community,swrec/internal/model.Agent,swrec/internal/model.Product,swrec/internal/engine.Snapshot,swrec/internal/profmat.Matrix,swrec/internal/profmat.Row",
		"comma-separated pkgpath.TypeName list of frozen-after-publication types")
	Analyzer.Flags.StringVar(&allow, "allow",
		"swrec/internal/model,swrec/internal/engine,swrec/internal/ingest,swrec/internal/checkpoint,swrec/internal/profmat,swrec/internal/foaf,swrec/internal/corpus,swrec/internal/datagen,swrec/internal/attack",
		"comma-separated import-path prefixes that own the pre-publication build phase")
	Analyzer.Flags.StringVar(&mutators, "mutators",
		"AddAgent,AddProduct,SetTrust,SetRating,DeleteTrust,DeleteRating,MarkDirty,Merge",
		"comma-separated method names treated as writes when invoked on a frozen receiver")
}

func run(pass *analysis.Pass) (any, error) {
	if lintutil.PkgMatch(pass.Pkg.Path(), allow) {
		return nil, nil
	}
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	c := &checker{
		pass:  pass,
		sup:   lintutil.New(pass, "snapshotfreeze"),
		built: make(map[*ast.FuncDecl]map[types.Object]bool),
	}

	nodeFilter := []ast.Node{
		(*ast.AssignStmt)(nil),
		(*ast.IncDecStmt)(nil),
		(*ast.CallExpr)(nil),
	}
	ins.WithStack(nodeFilter, func(n ast.Node, push bool, stack []ast.Node) bool {
		if !push {
			return true
		}
		if lintutil.IsTestFile(pass, stack[0].(*ast.File)) {
			return false
		}
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				c.write(lhs, stack)
			}
		case *ast.IncDecStmt:
			c.write(n.X, stack)
		case *ast.CallExpr:
			c.mutatorCall(n, stack)
		}
		return true
	})
	return nil, nil
}

type checker struct {
	pass  *analysis.Pass
	sup   *lintutil.Suppressions
	built map[*ast.FuncDecl]map[types.Object]bool
}

// write reports lhs when its selector/index chain passes through a
// frozen type whose root is not locally built.
func (c *checker) write(lhs ast.Expr, stack []ast.Node) {
	name := c.frozenChain(lhs)
	if name == "" {
		return
	}
	if c.locallyBuilt(rootIdent(lhs), stack) {
		return
	}
	c.sup.Report(lhs.Pos(), "write through frozen "+name+" after publication: readers hold the swapped snapshot lock-free, so this races with every concurrent read — build a fresh value and Swap it in, or justify with //nolint:snapshotfreeze -- reason")
}

// mutatorCall reports calls of a configured mutator method on a frozen
// receiver that is not locally built.
func (c *checker) mutatorCall(call *ast.CallExpr, stack []ast.Node) {
	// delete(m, k) mutates the map owner just like m[k] = v does.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "delete" && len(call.Args) == 2 {
		if _, builtin := c.pass.TypesInfo.Uses[id].(*types.Builtin); builtin {
			if name := c.frozenChain(call.Args[0]); name != "" && !c.locallyBuilt(rootIdent(call.Args[0]), stack) {
				c.sup.Report(call.Pos(), "delete mutates frozen "+name+" after publication: readers hold the swapped snapshot lock-free, so this races with every concurrent read — build a fresh value and Swap it in, or justify with //nolint:snapshotfreeze -- reason")
			}
		}
		return
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || !nameIn(sel.Sel.Name, mutators) {
		return
	}
	tv, ok := c.pass.TypesInfo.Types[sel.X]
	if !ok {
		return
	}
	name := frozenType(tv.Type)
	if name == "" {
		return
	}
	if c.locallyBuilt(rootIdent(sel.X), stack) {
		return
	}
	c.sup.Report(call.Pos(), sel.Sel.Name+" mutates frozen "+name+" after publication: readers hold the swapped snapshot lock-free, so this races with every concurrent read — build a fresh value and Swap it in, or justify with //nolint:snapshotfreeze -- reason")
}

// frozenChain walks the write chain (selectors, indexes, derefs) and
// returns the qualified name of the first frozen type an operand has,
// or "". Writing a plain local variable of frozen type (x = ...) is
// rebinding, not mutation, and is not a chain.
func (c *checker) frozenChain(e ast.Expr) string {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.SelectorExpr:
			if name := c.frozenExpr(x.X); name != "" {
				return name
			}
			e = x.X
		case *ast.IndexExpr:
			if name := c.frozenExpr(x.X); name != "" {
				return name
			}
			e = x.X
		case *ast.StarExpr:
			if name := c.frozenExpr(x.X); name != "" {
				return name
			}
			e = x.X
		default:
			return ""
		}
	}
}

func (c *checker) frozenExpr(e ast.Expr) string {
	tv, ok := c.pass.TypesInfo.Types[e]
	if !ok {
		return ""
	}
	return frozenType(tv.Type)
}

// frozenType dereferences pointers and reports the qualified name when
// the named type is in the configured frozen list.
func frozenType(t types.Type) string {
	t = types.Unalias(t)
	if p, ok := t.(*types.Pointer); ok {
		t = types.Unalias(p.Elem())
	}
	n, ok := t.(*types.Named)
	if !ok || n.Obj() == nil || n.Obj().Pkg() == nil {
		return ""
	}
	full := n.Obj().Pkg().Path() + "." + n.Obj().Name()
	if nameIn(full, frozen) {
		return full
	}
	return ""
}

func nameIn(name, patterns string) bool {
	for _, p := range strings.Split(patterns, ",") {
		if strings.TrimSpace(p) == name {
			return true
		}
	}
	return false
}

// rootIdent walks to the identifier a write chain roots in, stepping
// through method calls to their receivers (c.Agent(id).Ratings roots in
// c). A chain rooted in a bare call result has no retained origin to
// classify and yields nil.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.CallExpr:
			sel, ok := ast.Unparen(x.Fun).(*ast.SelectorExpr)
			if !ok {
				return nil
			}
			e = sel.X
		default:
			return nil
		}
	}
}

// locallyBuilt reports whether root resolves to a variable the
// enclosing function built itself — the pre-publication phase. nil
// roots (chains off a bare call result) are treated as built: writing
// into a value the statement just constructed is builder-style by
// construction.
func (c *checker) locallyBuilt(root *ast.Ident, stack []ast.Node) bool {
	if root == nil {
		return true
	}
	obj := c.pass.TypesInfo.ObjectOf(root)
	if obj == nil {
		return false
	}
	fd := enclosingFunc(stack)
	if fd == nil {
		return false
	}
	return c.builtSet(fd)[obj]
}

func enclosingFunc(stack []ast.Node) *ast.FuncDecl {
	for i := len(stack) - 1; i >= 0; i-- {
		if fd, ok := stack[i].(*ast.FuncDecl); ok {
			return fd
		}
	}
	return nil
}

// builtSet computes (and caches) the function's locally built
// variables: idents assigned from a composite literal, a &composite
// literal, a constructor-shaped call (New*, Clone, Copy), a call whose
// receiver is itself locally built, or an alias of a built ident. One
// forward pass in source order resolves the def-before-use chains that
// occur in practice.
func (c *checker) builtSet(fd *ast.FuncDecl) map[types.Object]bool {
	if s, ok := c.built[fd]; ok {
		return s
	}
	s := make(map[types.Object]bool)
	c.built[fd] = s
	if fd.Body == nil {
		return s
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, lhs := range as.Lhs {
			id, ok := ast.Unparen(lhs).(*ast.Ident)
			if !ok || id.Name == "_" {
				continue
			}
			// Tuple form (c, err := NewX()) classifies the single RHS
			// for every LHS.
			rhs := as.Rhs[0]
			if len(as.Lhs) == len(as.Rhs) {
				rhs = as.Rhs[i]
			}
			if c.buildsValue(rhs, s) {
				if obj := c.pass.TypesInfo.ObjectOf(id); obj != nil {
					s[obj] = true
				}
			}
		}
		return true
	})
	return s
}

func (c *checker) buildsValue(e ast.Expr, built map[types.Object]bool) bool {
	switch x := ast.Unparen(e).(type) {
	case *ast.CompositeLit:
		return true
	case *ast.UnaryExpr:
		_, lit := ast.Unparen(x.X).(*ast.CompositeLit)
		return lit
	case *ast.Ident:
		obj := c.pass.TypesInfo.ObjectOf(x)
		return obj != nil && built[obj]
	case *ast.CallExpr:
		name := calleeName(x)
		if constructorName(name) {
			return true
		}
		// An accessor on a value this function built returns
		// pre-publication interior state.
		if sel, ok := ast.Unparen(x.Fun).(*ast.SelectorExpr); ok {
			if root := rootIdent(sel.X); root != nil {
				obj := c.pass.TypesInfo.ObjectOf(root)
				return obj != nil && built[obj]
			}
		}
	}
	return false
}

// constructorName matches the naming conventions that signal "returns
// a value the caller now owns": New*/new*, Generate*/generate*, Clone,
// Copy.
func constructorName(name string) bool {
	for _, p := range []string{"New", "new", "Generate", "generate"} {
		if strings.HasPrefix(name, p) {
			return true
		}
	}
	return name == "Clone" || name == "Copy"
}

func calleeName(call *ast.CallExpr) string {
	switch f := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return f.Name
	case *ast.SelectorExpr:
		return f.Sel.Name
	}
	return ""
}
