// Package lintutil carries the plumbing shared by the swrecvet
// analyzers (internal/analysis/...): package scoping, test/generated
// file exclusion, and the auditable suppression comments.
//
// Suppression grammar — every exception must carry a justification so
// it is auditable rather than invisible:
//
//	//nolint:ctxflow -- reason the rule does not apply here
//	//nolint:ctxflow,durableerr -- reason covering both analyzers
//	//swrecvet:disable detrand -- file-scoped reason
//
// A line suppression covers diagnostics on its own line and on the
// line directly below (so it can sit above a long statement). The
// file-scoped form disables one analyzer for the whole file. A
// suppression without a "-- reason" clause is inert: the diagnostic
// still fires, which keeps unexplained exceptions visible in review.
package lintutil

import (
	"flag"
	"go/ast"
	"go/token"
	"regexp"
	"strings"

	"golang.org/x/tools/go/analysis"
)

// auditMode switches every Suppressions.Report from dropping a
// suppressed diagnostic to emitting it with an AuditPrefix marker.
// cmd/lintaudit runs the whole suite this way and cross-references the
// marked diagnostics against the tree's suppression comments: a
// suppression no marked diagnostic lands under is stale — the invariant
// it excused no longer fires there — and can be deleted.
//
// Every analyzer registers the flag (as -<name>.audit) via
// RegisterAuditFlag; all registrations bind this one variable, so
// enabling audit on any analyzer of a unitchecker invocation enables it
// for those analyzers only in that process. Flags, unlike environment
// variables, participate in go vet's result caching, so an audit run
// never reads stale non-audit results (or vice versa).
var auditMode bool

// AuditPrefix marks a diagnostic that a justified suppression covers,
// emitted only in audit mode.
const AuditPrefix = "[suppressed] "

// RegisterAuditFlag registers the shared audit-mode flag on one
// analyzer's flag set.
func RegisterAuditFlag(fs *flag.FlagSet) {
	fs.BoolVar(&auditMode, "audit", false,
		"report suppressed diagnostics with the "+strings.TrimSpace(AuditPrefix)+" prefix instead of dropping them (cmd/lintaudit)")
}

// PkgMatch reports whether path is covered by the comma-separated
// import-path prefix list in patterns: an exact match, or a match of a
// "prefix/" path segment boundary.
func PkgMatch(path, patterns string) bool {
	for _, p := range strings.Split(patterns, ",") {
		p = strings.TrimSpace(p)
		if p == "" {
			continue
		}
		if path == p || strings.HasPrefix(path, p+"/") {
			return true
		}
	}
	return false
}

// IsTestFile reports whether file was parsed from a _test.go file. The
// swrecvet invariants govern library code; tests may simulate clocks,
// drop errors, and spawn throwaway goroutines freely.
func IsTestFile(pass *analysis.Pass, file *ast.File) bool {
	name := pass.Fset.Position(file.Package).Filename
	return strings.HasSuffix(name, "_test.go")
}

var (
	nolintRe  = regexp.MustCompile(`^//\s*nolint:([a-z0-9_,\s]+?)(?:\s*--\s*(\S.*))?$`)
	disableRe = regexp.MustCompile(`^//\s*swrecvet:disable\s+([a-z0-9_,\s]+?)(?:\s*--\s*(\S.*))?$`)
)

// Directive is one parsed suppression comment.
type Directive struct {
	Analyzers  []string // analyzer names the comment suppresses
	Justified  bool     // a "-- reason" clause is present
	FileScoped bool     // swrecvet:disable form (whole file) vs nolint (line + next)
}

// ParseDirective parses one comment line ("//..." text, as in
// ast.Comment.Text) as a suppression directive. ok is false for
// ordinary comments. The match is anchored at the comment start:
// ast.Comment.Text is only the comment itself, so trailing suppressions
// sharing a line with code match directly, while prose or indented
// code-block examples that merely mention the syntax mid-comment do
// not become accidental suppressions.
func ParseDirective(text string) (d Directive, ok bool) {
	text = strings.TrimSpace(text)
	if m := disableRe.FindStringSubmatch(text); m != nil {
		return Directive{Analyzers: splitNames(m[1]), Justified: m[2] != "", FileScoped: true}, true
	}
	if m := nolintRe.FindStringSubmatch(text); m != nil {
		return Directive{Analyzers: splitNames(m[1]), Justified: m[2] != ""}, true
	}
	return Directive{}, false
}

func splitNames(list string) []string {
	var out []string
	for _, n := range strings.Split(list, ",") {
		if n = strings.TrimSpace(n); n != "" {
			out = append(out, n)
		}
	}
	return out
}

// Suppressions indexes the nolint / swrecvet:disable comments of one
// pass for one analyzer. Build it once per Run with New, then route
// every diagnostic through Report.
type Suppressions struct {
	pass     *analysis.Pass
	analyzer string
	files    map[string]bool         // filename -> file-scoped disable
	lines    map[string]map[int]bool // filename -> line -> suppressed
}

// New scans the pass's files for suppression comments naming analyzer.
func New(pass *analysis.Pass, analyzer string) *Suppressions {
	s := &Suppressions{
		pass:     pass,
		analyzer: analyzer,
		files:    make(map[string]bool),
		lines:    make(map[string]map[int]bool),
	}
	for _, f := range pass.Files {
		name := pass.Fset.Position(f.Package).Filename
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				s.record(name, c)
			}
		}
	}
	return s
}

func (s *Suppressions) record(filename string, c *ast.Comment) {
	d, ok := ParseDirective(c.Text)
	if !ok || !d.Justified || !names(d.Analyzers, s.analyzer) {
		return // ordinary comment, other analyzer, or unjustified: inert
	}
	if d.FileScoped {
		s.files[filename] = true
		return
	}
	line := s.pass.Fset.Position(c.Pos()).Line
	if s.lines[filename] == nil {
		s.lines[filename] = make(map[int]bool)
	}
	s.lines[filename][line] = true
	s.lines[filename][line+1] = true
}

func names(list []string, want string) bool {
	for _, n := range list {
		if n == want {
			return true
		}
	}
	return false
}

// Suppressed reports whether a diagnostic at pos is covered by a
// justified suppression.
func (s *Suppressions) Suppressed(pos token.Pos) bool {
	p := s.pass.Fset.Position(pos)
	if s.files[p.Filename] {
		return true
	}
	return s.lines[p.Filename][p.Line]
}

// Report emits a diagnostic at pos unless a justified suppression
// covers it. In audit mode (see RegisterAuditFlag) a suppressed
// diagnostic is emitted anyway, marked with AuditPrefix, so
// cmd/lintaudit can prove the suppression still excuses something.
func (s *Suppressions) Report(pos token.Pos, msg string) {
	if s.Suppressed(pos) {
		if auditMode {
			s.pass.Report(analysis.Diagnostic{Pos: pos, Message: AuditPrefix + msg})
		}
		return
	}
	s.pass.Report(analysis.Diagnostic{Pos: pos, Message: msg})
}
