// Package lintutil carries the plumbing shared by the swrecvet
// analyzers (internal/analysis/...): package scoping, test/generated
// file exclusion, and the auditable suppression comments.
//
// Suppression grammar — every exception must carry a justification so
// it is auditable rather than invisible:
//
//	//nolint:ctxflow -- reason the rule does not apply here
//	//nolint:ctxflow,durableerr -- reason covering both analyzers
//	//swrecvet:disable detrand -- file-scoped reason
//
// A line suppression covers diagnostics on its own line and on the
// line directly below (so it can sit above a long statement). The
// file-scoped form disables one analyzer for the whole file. A
// suppression without a "-- reason" clause is inert: the diagnostic
// still fires, which keeps unexplained exceptions visible in review.
package lintutil

import (
	"go/ast"
	"go/token"
	"regexp"
	"strings"

	"golang.org/x/tools/go/analysis"
)

// PkgMatch reports whether path is covered by the comma-separated
// import-path prefix list in patterns: an exact match, or a match of a
// "prefix/" path segment boundary.
func PkgMatch(path, patterns string) bool {
	for _, p := range strings.Split(patterns, ",") {
		p = strings.TrimSpace(p)
		if p == "" {
			continue
		}
		if path == p || strings.HasPrefix(path, p+"/") {
			return true
		}
	}
	return false
}

// IsTestFile reports whether file was parsed from a _test.go file. The
// swrecvet invariants govern library code; tests may simulate clocks,
// drop errors, and spawn throwaway goroutines freely.
func IsTestFile(pass *analysis.Pass, file *ast.File) bool {
	name := pass.Fset.Position(file.Package).Filename
	return strings.HasSuffix(name, "_test.go")
}

var (
	nolintRe  = regexp.MustCompile(`^//\s*nolint:([a-z0-9_,\s]+?)(?:\s*--\s*(\S.*))?$`)
	disableRe = regexp.MustCompile(`^//\s*swrecvet:disable\s+([a-z0-9_,\s]+?)(?:\s*--\s*(\S.*))?$`)
)

// Suppressions indexes the nolint / swrecvet:disable comments of one
// pass for one analyzer. Build it once per Run with New, then route
// every diagnostic through Report.
type Suppressions struct {
	pass     *analysis.Pass
	analyzer string
	files    map[string]bool         // filename -> file-scoped disable
	lines    map[string]map[int]bool // filename -> line -> suppressed
}

// New scans the pass's files for suppression comments naming analyzer.
func New(pass *analysis.Pass, analyzer string) *Suppressions {
	s := &Suppressions{
		pass:     pass,
		analyzer: analyzer,
		files:    make(map[string]bool),
		lines:    make(map[string]map[int]bool),
	}
	for _, f := range pass.Files {
		name := pass.Fset.Position(f.Package).Filename
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				s.record(name, c)
			}
		}
	}
	return s
}

func (s *Suppressions) record(filename string, c *ast.Comment) {
	text := strings.TrimSpace(c.Text)
	if m := disableRe.FindStringSubmatch(text); m != nil {
		if names(m[1], s.analyzer) && m[2] != "" {
			s.files[filename] = true
		}
		return
	}
	// Trailing nolint comments share a line with code, so only the
	// part starting at the comment is matched.
	if i := strings.Index(text, "//nolint:"); i > 0 {
		text = text[i:]
	}
	if m := nolintRe.FindStringSubmatch(text); m != nil {
		if !names(m[1], s.analyzer) || m[2] == "" {
			return // other analyzer, or unjustified: inert
		}
		line := s.pass.Fset.Position(c.Pos()).Line
		if s.lines[filename] == nil {
			s.lines[filename] = make(map[int]bool)
		}
		s.lines[filename][line] = true
		s.lines[filename][line+1] = true
	}
}

func names(list, want string) bool {
	for _, n := range strings.Split(list, ",") {
		if strings.TrimSpace(n) == want {
			return true
		}
	}
	return false
}

// Suppressed reports whether a diagnostic at pos is covered by a
// justified suppression.
func (s *Suppressions) Suppressed(pos token.Pos) bool {
	p := s.pass.Fset.Position(pos)
	if s.files[p.Filename] {
		return true
	}
	return s.lines[p.Filename][p.Line]
}

// Report emits a diagnostic at pos unless a justified suppression
// covers it.
func (s *Suppressions) Report(pos token.Pos, msg string) {
	if s.Suppressed(pos) {
		return
	}
	s.pass.Report(analysis.Diagnostic{Pos: pos, Message: msg})
}
