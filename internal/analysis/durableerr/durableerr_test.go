package durableerr_test

import (
	"testing"

	"swrec/internal/analysis/analyzertest"
	"swrec/internal/analysis/durableerr"
)

func TestDurableerr(t *testing.T) {
	analyzertest.Run(t, durableerr.Analyzer, "swrec/internal/wal")
}

// TestOffDurablePath guards the false-positive direction: identical
// dropped errors outside internal/wal and internal/store are another
// package's concern.
func TestOffDurablePath(t *testing.T) {
	analyzertest.Run(t, durableerr.Analyzer, "swrec/internal/crawler")
}
