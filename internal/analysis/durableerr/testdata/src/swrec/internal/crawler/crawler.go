// Fixture guard: the crawler drops Close errors on response bodies all
// day; only internal/wal and internal/store are the durable path.
package crawler

type body struct{}

func (b *body) Close() error { return nil }
func (b *body) Sync() error  { return nil }

func fetch(b *body) {
	b.Close()
}
