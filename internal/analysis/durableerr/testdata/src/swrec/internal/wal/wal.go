// Fixture for durableerr: dropped-error shapes on the durable path,
// drawn from the WAL's rotation/group-commit code. The file type
// carries Sync() so it reads as a durable handle; buffer does not, so
// its dropped Write errors stay out of scope.
package wal

type file struct{}

func (f *file) Write(p []byte) (int, error)        { return len(p), nil }
func (f *file) Sync() error                        { return nil }
func (f *file) Close() error                       { return nil }
func (f *file) Truncate(size int64) error          { return nil }
func (f *file) Seek(o int64, w int) (int64, error) { return o, nil }

type buffer struct{}

func (b *buffer) Write(p []byte) (int, error) { return len(p), nil }
func (b *buffer) Close() error                { return nil }

func rotate(f *file) {
	f.Close()         // want `Close error dropped on the durable path`
	defer f.Sync()    // want `Sync error dropped by defer on the durable path`
	go f.Sync()       // want `Sync error dropped by go statement on the durable path`
	_ = f.Truncate(0) // want `Truncate error assigned to _ on the durable path`
}

func groupCommit(f *file, p []byte) {
	n, _ := f.Write(p) // want `Write error assigned to _ on the durable path`
	_ = n
}

func checked(f *file, p []byte) error {
	if _, err := f.Write(p); err != nil {
		return err
	}
	if err := f.Sync(); err != nil {
		return err
	}
	return f.Close()
}

// bestEffortCleanup documents its discard: the justified suppression
// is the auditable exception path.
func bestEffortCleanup(f *file) error {
	err := f.Sync()
	if err != nil {
		_ = f.Close() //nolint:durableerr -- already failing; the Sync error is the one reported
		return err
	}
	return f.Close()
}

// hashers and buffers have no Sync: their structurally-nil Write
// errors are out of scope (false-positive guard).
func hashFrame(b *buffer, p []byte) {
	b.Write(p)
	b.Close()
}

// Seek is not a durable verb (false-positive guard).
func reposition(f *file) {
	f.Seek(0, 0)
}
