// Package durableerr enforces the acked-durability invariant from the
// WAL PR: on the durable path (internal/wal, internal/store,
// internal/checkpoint), the error of every Write, Sync, Close, and
// Truncate on a file handle must be checked. A dropped fsync error is the classic silent
// durability hole — the client got its 202, the bytes never reached
// the platter, and recovery replays a hole.
//
// Only receivers that look like durable file handles are in scope: the
// receiver's method set must include Sync() (os.File, faultinject.File,
// ...), which keeps hashers, buffers, and network writers out.
// Best-effort discards on already-failing cleanup paths are legitimate
// and must say so: `_ = f.Close() //nolint:durableerr -- reason`.
package durableerr

import (
	"go/ast"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
	"swrec/internal/analysis/lintutil"
)

const doc = `reports dropped Write/Sync/Close/Truncate errors on the durable path

A WAL or store that ignores an fsync/close error acks writes it may
not have persisted. Every such error in internal/wal and
internal/store must be checked, or the discard justified with
//nolint:durableerr -- reason.`

// Analyzer is the durableerr pass.
var Analyzer = &analysis.Analyzer{
	Name:     "durableerr",
	Doc:      doc,
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

var packages string

func init() {
	lintutil.RegisterAuditFlag(&Analyzer.Flags)
	Analyzer.Flags.StringVar(&packages, "packages",
		"swrec/internal/wal,swrec/internal/store,swrec/internal/checkpoint",
		"comma-separated import-path prefixes forming the durable path")
}

var verbs = map[string]bool{"Write": true, "Sync": true, "Close": true, "Truncate": true}

func run(pass *analysis.Pass) (any, error) {
	if !lintutil.PkgMatch(pass.Pkg.Path(), packages) {
		return nil, nil
	}
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	sup := lintutil.New(pass, "durableerr")

	report := func(call *ast.CallExpr, how string) {
		name := call.Fun.(*ast.SelectorExpr).Sel.Name
		sup.Report(call.Pos(), name+" error "+how+" on the durable path: an unchecked "+name+" can ack unpersisted state — handle the error or discard it with //nolint:durableerr -- reason")
	}

	nodeFilter := []ast.Node{
		(*ast.ExprStmt)(nil),
		(*ast.DeferStmt)(nil),
		(*ast.GoStmt)(nil),
		(*ast.AssignStmt)(nil),
	}
	ins.WithStack(nodeFilter, func(n ast.Node, push bool, stack []ast.Node) bool {
		if !push {
			return false
		}
		if lintutil.IsTestFile(pass, stack[0].(*ast.File)) {
			return false
		}
		switch stmt := n.(type) {
		case *ast.ExprStmt:
			if call := durableCall(pass, stmt.X); call != nil {
				report(call, "dropped")
			}
		case *ast.DeferStmt:
			if call := durableCall(pass, stmt.Call); call != nil {
				report(call, "dropped by defer")
			}
		case *ast.GoStmt:
			if call := durableCall(pass, stmt.Call); call != nil {
				report(call, "dropped by go statement")
			}
		case *ast.AssignStmt:
			// n, _ = f.Write(p) / _ = f.Sync(): the error result is
			// the last return value; flag when its destination is _.
			if len(stmt.Rhs) != 1 {
				return true
			}
			call := durableCall(pass, stmt.Rhs[0])
			if call == nil || len(stmt.Lhs) == 0 {
				return true
			}
			if id, ok := stmt.Lhs[len(stmt.Lhs)-1].(*ast.Ident); ok && id.Name == "_" {
				report(call, "assigned to _")
			}
		}
		return true
	})
	return nil, nil
}

// durableCall returns e as a method call of one of the durable verbs
// on a receiver whose method set includes Sync (the shape of a durable
// file handle), or nil.
func durableCall(pass *analysis.Pass, e ast.Expr) *ast.CallExpr {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return nil
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || !verbs[sel.Sel.Name] {
		return nil
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok {
		return nil
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	if !returnsError(sig) || !hasSync(sig.Recv().Type()) {
		return nil
	}
	return call
}

func returnsError(sig *types.Signature) bool {
	res := sig.Results()
	if res.Len() == 0 {
		return false
	}
	last := res.At(res.Len() - 1).Type()
	named, ok := last.(*types.Named)
	return ok && named.Obj().Name() == "error" && named.Obj().Pkg() == nil
}

// hasSync reports whether t's method set (or its pointer's) includes a
// Sync method — the marker distinguishing durable file handles from
// hashers and buffers, whose Write errors are structurally nil.
func hasSync(t types.Type) bool {
	if m, _, _ := types.LookupFieldOrMethod(t, true, nil, "Sync"); m != nil {
		if _, ok := m.(*types.Func); ok {
			return true
		}
	}
	return false
}
