// Package boundedmake guards the decode paths (checkpoint, wal, store)
// against allocation amplification: a length field read from a frame is
// attacker-controlled until proven otherwise, and `make` sized from it
// hands a corrupt or hostile record the power to demand gigabytes
// before the first payload byte is read. The durability PRs made this a
// contract — every decoded count flows through dec.count() or an
// explicit limit comparison before it sizes an allocation.
//
// This is the go/ast + go/types approximation of the SSA formulation
// ("every make size dominated by a bounds check"): inside the decode
// packages, a make whose size is not a constant is reported unless
// every variable the size expression depends on is either
//
//   - assigned from a validator call (a function or method named in
//     -boundedmake.validators, dec.count by default), from len/cap, or
//     from a constant expression;
//   - mentioned in a comparison inside an if statement that precedes
//     the make in source order (the dominance approximation); or
//   - an accumulator whose every addend satisfies these rules
//     (recursively, to a fixed depth).
//
// Sizes derived from len()/cap() of data already in memory are always
// fine: they cannot amplify beyond what was already read.
package boundedmake

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
	"swrec/internal/analysis/lintutil"
)

const doc = `reports make calls in decode paths sized from unvalidated decoded input

A length field from a wal/checkpoint/store frame is attacker-controlled
until it passes dec.count() or an explicit limit check. make sized from
it without that dominating check lets one corrupt record demand
gigabytes. Validate first, or justify with
//nolint:boundedmake -- reason.`

// Analyzer is the boundedmake pass.
var Analyzer = &analysis.Analyzer{
	Name:     "boundedmake",
	Doc:      doc,
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

var (
	pkgs       string
	validators string
)

func init() {
	lintutil.RegisterAuditFlag(&Analyzer.Flags)
	Analyzer.Flags.StringVar(&pkgs, "pkgs",
		"swrec/internal/checkpoint,swrec/internal/wal,swrec/internal/store",
		"comma-separated import-path prefixes whose decode paths are checked")
	Analyzer.Flags.StringVar(&validators, "validators", "count",
		"comma-separated function/method names whose return value counts as a validated size")
}

// maxDepth bounds the recursive safety classification of accumulator
// chains.
const maxDepth = 4

func run(pass *analysis.Pass) (any, error) {
	if !lintutil.PkgMatch(pass.Pkg.Path(), pkgs) {
		return nil, nil
	}
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	sup := lintutil.New(pass, "boundedmake")

	nodeFilter := []ast.Node{(*ast.CallExpr)(nil)}
	ins.WithStack(nodeFilter, func(n ast.Node, push bool, stack []ast.Node) bool {
		if !push {
			return true
		}
		if lintutil.IsTestFile(pass, stack[0].(*ast.File)) {
			return false
		}
		call := n.(*ast.CallExpr)
		if !isMake(pass, call) || len(call.Args) < 2 {
			return true
		}
		fd := enclosingFunc(stack)
		if fd == nil || fd.Body == nil {
			return true
		}
		c := &checker{pass: pass, body: fd.Body, makePos: call.Pos()}
		// Both the length and, when present, the capacity must be
		// bounded; an unchecked capacity allocates just the same.
		for _, size := range call.Args[1:] {
			if bad := c.unsafeIdent(size, maxDepth); bad != "" {
				sup.Report(call.Pos(), "make sized from "+bad+" without a dominating bounds check: a corrupt or hostile record can demand gigabytes before the first payload byte is read — run it through a validator ("+validators+") or an explicit limit comparison first, or justify with //nolint:boundedmake -- reason")
				break
			}
		}
		return true
	})
	return nil, nil
}

type checker struct {
	pass    *analysis.Pass
	body    *ast.BlockStmt
	makePos token.Pos
}

// unsafeIdent returns a description of the first size-expression part
// that cannot be proven bounded, or "". The walk is structural: len()
// arguments and selector bases do not influence the magnitude and are
// not descended into.
func (c *checker) unsafeIdent(size ast.Expr, depth int) string {
	size = ast.Unparen(size)
	if tv, ok := c.pass.TypesInfo.Types[size]; ok && tv.Value != nil {
		return "" // constant expression
	}
	switch x := size.(type) {
	case *ast.Ident:
		obj, ok := c.pass.TypesInfo.Uses[x].(*types.Var)
		if !ok {
			return ""
		}
		if !c.validated(obj, depth) {
			return "unvalidated " + obj.Name()
		}
	case *ast.SelectorExpr:
		// A field read (h.keyLen): bounded only by a comparison on the
		// field itself; the base variable is irrelevant to magnitude.
		if obj, ok := c.pass.TypesInfo.Uses[x.Sel].(*types.Var); ok {
			if !c.comparedBefore(obj) {
				return "unvalidated field " + x.Sel.Name
			}
		}
	case *ast.BinaryExpr:
		if bad := c.unsafeIdent(x.X, depth); bad != "" {
			return bad
		}
		return c.unsafeIdent(x.Y, depth)
	case *ast.UnaryExpr:
		return c.unsafeIdent(x.X, depth)
	case *ast.CallExpr:
		if tv, ok := c.pass.TypesInfo.Types[x.Fun]; ok && tv.IsType() && len(x.Args) == 1 {
			return c.unsafeIdent(x.Args[0], depth) // conversion
		}
		name := calleeName(x)
		if name == "len" || name == "cap" || nameIn(name, validators) {
			return ""
		}
		return "unvalidated " + name + "() result"
	case *ast.IndexExpr:
		// An element of a decoded slice (lens[i]) is itself decoded
		// input; a comparison covering the element expression's base
		// does not bound any single element, so require validation of
		// how the slice was filled — conservatively reported.
		return "unvalidated decoded element"
	}
	return ""
}

// validated reports whether obj is bounded at the make: compared in an
// if statement before it, or exclusively assigned from safe
// expressions before it.
func (c *checker) validated(obj *types.Var, depth int) bool {
	if depth <= 0 {
		return false
	}
	if c.comparedBefore(obj) {
		return true
	}
	assigns := c.assignmentsBefore(obj)
	if len(assigns) == 0 {
		return false // parameter or assigned only after the make
	}
	for _, rhs := range assigns {
		if !c.safeExpr(rhs, depth) {
			return false
		}
	}
	return true
}

// comparedBefore reports whether obj appears inside a comparison in an
// if statement (init or condition) whose position precedes the make —
// the positional approximation of dominance.
func (c *checker) comparedBefore(obj *types.Var) bool {
	found := false
	ast.Inspect(c.body, func(n ast.Node) bool {
		if found {
			return false
		}
		ifs, ok := n.(*ast.IfStmt)
		if !ok || ifs.Pos() >= c.makePos {
			return true
		}
		check := func(e ast.Expr) {
			ast.Inspect(e, func(m ast.Node) bool {
				b, ok := m.(*ast.BinaryExpr)
				if !ok || !isComparison(b.Op) {
					return true
				}
				if c.mentions(b, obj) {
					found = true
				}
				return !found
			})
		}
		check(ifs.Cond)
		if ifs.Init != nil {
			ast.Inspect(ifs.Init, func(m ast.Node) bool {
				if e, ok := m.(ast.Expr); ok {
					check(e)
					return false
				}
				return true
			})
		}
		return true
	})
	return found
}

func (c *checker) mentions(e ast.Expr, obj *types.Var) bool {
	hit := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && c.pass.TypesInfo.Uses[id] == obj {
			hit = true
		}
		return !hit
	})
	return hit
}

// assignmentsBefore collects the right-hand sides of every assignment
// to obj that precedes the make, including op-assigns (+=).
func (c *checker) assignmentsBefore(obj *types.Var) []ast.Expr {
	var out []ast.Expr
	ast.Inspect(c.body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if n.Pos() >= c.makePos || len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i, lhs := range n.Lhs {
				id, ok := ast.Unparen(lhs).(*ast.Ident)
				if !ok {
					continue
				}
				if c.pass.TypesInfo.Defs[id] == obj || c.pass.TypesInfo.Uses[id] == obj {
					out = append(out, n.Rhs[i])
				}
			}
		case *ast.IncDecStmt:
			// x++ adds a constant per iteration and cannot amplify on
			// its own: not recorded as an assignment.
		case *ast.ValueSpec:
			if n.Pos() >= c.makePos {
				return true
			}
			for i, name := range n.Names {
				if c.pass.TypesInfo.Defs[name] == obj && i < len(n.Values) {
					out = append(out, n.Values[i])
				}
			}
		}
		return true
	})
	return out
}

// safeExpr reports whether e can only yield a bounded value: constants,
// len/cap, validator calls, conversions/arithmetic over safe operands,
// and already-validated variables.
func (c *checker) safeExpr(e ast.Expr, depth int) bool {
	e = ast.Unparen(e)
	if tv, ok := c.pass.TypesInfo.Types[e]; ok && tv.Value != nil {
		return true // constant expression
	}
	switch x := e.(type) {
	case *ast.Ident:
		obj, ok := c.pass.TypesInfo.Uses[x].(*types.Var)
		if !ok {
			return false
		}
		return c.validated(obj, depth-1)
	case *ast.BinaryExpr:
		return c.safeExpr(x.X, depth) && c.safeExpr(x.Y, depth)
	case *ast.CallExpr:
		if tv, ok := c.pass.TypesInfo.Types[x.Fun]; ok && tv.IsType() && len(x.Args) == 1 {
			return c.safeExpr(x.Args[0], depth) // conversion
		}
		switch name := calleeName(x); {
		case name == "len" || name == "cap":
			return true // bounded by data already in memory
		case nameIn(name, validators):
			return true
		}
	case *ast.SelectorExpr:
		// A field read (h.keyLen) is unvalidated data flow unless a
		// comparison covers the chain's leaf — handled by the caller
		// via comparedBefore on the root variable, so reject here.
		return false
	}
	return false
}

func isMake(pass *analysis.Pass, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "make" {
		return false
	}
	_, builtin := pass.TypesInfo.Uses[id].(*types.Builtin)
	return builtin
}

func isComparison(op token.Token) bool {
	switch op {
	case token.LSS, token.GTR, token.LEQ, token.GEQ, token.EQL, token.NEQ:
		return true
	}
	return false
}

func enclosingFunc(stack []ast.Node) *ast.FuncDecl {
	for i := len(stack) - 1; i >= 0; i-- {
		if fd, ok := stack[i].(*ast.FuncDecl); ok {
			return fd
		}
	}
	return nil
}

func calleeName(call *ast.CallExpr) string {
	switch f := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return f.Name
	case *ast.SelectorExpr:
		return f.Sel.Name
	}
	return ""
}

func nameIn(name, patterns string) bool {
	for _, p := range strings.Split(patterns, ",") {
		if strings.TrimSpace(p) == name {
			return true
		}
	}
	return false
}
