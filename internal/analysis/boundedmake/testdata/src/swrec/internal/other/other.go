// Package other is the scope guard: outside the decode packages,
// unvalidated makes are none of boundedmake's business.
package other

// Grow allocates from an arbitrary parameter — silent, wrong package.
func Grow(n int) []byte {
	return make([]byte, n)
}
