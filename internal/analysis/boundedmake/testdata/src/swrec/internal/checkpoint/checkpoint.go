// Package checkpoint is a fixture miniature of the decode path: a
// frame decoder whose counts must be validated before they size an
// allocation.
package checkpoint

const maxItems = 1 << 20

// dec is the frame decoder stub; count is the validator the real
// decoder exposes.
type dec struct {
	buf []byte
	off int
	err error
}

func (d *dec) uv() uint64 { return 0 }

func (d *dec) u32() uint32 { return 0 }

// count validates a decoded count against a floor and the remaining
// frame bytes, failing the decode on violation.
func (d *dec) count(n uint64, min int, what string) int {
	if n > uint64(len(d.buf)-d.off) {
		d.err = errTooBig
		return 0
	}
	return int(n)
}

var errTooBig = error(nil)

// DecodeValidated sizes every make from count() — silent.
func DecodeValidated(d *dec) []float64 {
	n := d.count(d.uv(), 0, "values")
	out := make([]float64, n)
	return out
}

// DecodeCompared uses an explicit limit comparison instead — also
// silent: the if dominates the make in source order.
func DecodeCompared(d *dec) []byte {
	n := int(d.u32())
	if n < 0 || n > maxItems {
		return nil
	}
	return make([]byte, n)
}

// DecodeUnchecked is the acceptance-required failing case: the count
// flows straight from the wire into make.
func DecodeUnchecked(d *dec) []byte {
	n := int(d.u32())
	return make([]byte, n) // want `make sized from unvalidated n`
}

// DecodeDirect feeds the decoder call into make with no intermediate
// variable at all.
func DecodeDirect(d *dec) []byte {
	return make([]byte, d.uv()) // want `make sized from unvalidated uv\(\) result`
}

// DecodeCapacity validates the length but not the capacity.
func DecodeCapacity(d *dec) []byte {
	n := d.count(d.uv(), 0, "len")
	c := int(d.u32())
	return make([]byte, n, c) // want `make sized from unvalidated c`
}

// DecodeAccumulated sums validated per-record counts — silent: every
// addend went through count().
func DecodeAccumulated(d *dec, records int) []float64 {
	total := 0
	for i := 0; i < records; i++ {
		np := d.count(d.uv(), 1, "peers")
		total += np
	}
	return make([]float64, total)
}

// DecodeAccumulatedRaw sums raw wire counts — the accumulator launders
// nothing.
func DecodeAccumulatedRaw(d *dec, records int) []float64 {
	total := 0
	for i := 0; i < records; i++ {
		total += int(d.u32())
	}
	return make([]float64, total) // want `make sized from unvalidated total`
}

// InMemory sizes allocations from data already in memory — always
// silent: len/cap and constants cannot amplify.
func InMemory(b []byte) ([]byte, []byte) {
	dup := make([]byte, len(b))
	fixed := make([]byte, 16)
	return dup, fixed
}

// Suppressed documents its checked-elsewhere size; the unjustified form
// below stays visible.
func Suppressed(d *dec) ([]byte, []byte) {
	a := int(d.u32())
	ok := make([]byte, a) //nolint:boundedmake -- fixture: frame length pre-validated by the caller's header check
	b := int(d.u32())
	// No "-- reason" clause: inert, the diagnostic keeps firing.
	//nolint:boundedmake
	bad := make([]byte, b) // want `make sized from unvalidated b`
	return ok, bad
}
