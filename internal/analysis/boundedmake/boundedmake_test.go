package boundedmake_test

import (
	"testing"

	"swrec/internal/analysis/analyzertest"
	"swrec/internal/analysis/boundedmake"
)

// TestDecodePath checks both directions inside a decode package:
// count()-validated, limit-compared, and len()-derived sizes are
// silent; raw wire counts — including the laundered accumulator and the
// unchecked capacity argument — are reported.
func TestDecodePath(t *testing.T) {
	analyzertest.Run(t, boundedmake.Analyzer, "swrec/internal/checkpoint")
}

// TestOutOfScope guards the false-positive direction: packages outside
// the decode list are never reported.
func TestOutOfScope(t *testing.T) {
	analyzertest.Run(t, boundedmake.Analyzer, "swrec/internal/other")
}
