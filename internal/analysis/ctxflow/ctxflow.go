// Package ctxflow enforces the deadline-propagation invariant from the
// robustness PR: the cold paths of the serving engine must run under
// the caller's context.Context so a request budget set at the API edge
// reaches Appleseed, profile generation, and voting. Minting a fresh
// root with context.Background() or context.TODO() inside those
// packages silently detaches the computation from every deadline
// upstream.
//
// One shape is exempt without a suppression: the documented compat
// delegation `func (r *T) Foo(...)` whose body forwards to
// `r.FooCtx(context.Background(), ...)`. Those wrappers exist
// precisely to mint the root context for callers that have none, and
// their Ctx sibling is the invariant-carrying entry point.
package ctxflow

import (
	"go/ast"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
	"swrec/internal/analysis/lintutil"
)

const doc = `reports context.Background()/context.TODO() on the engine's cold paths

The deadline budget threaded from internal/api must reach every cold
computation (engine singleflight, Appleseed, profiling, voting). A
fresh root context inside the scoped packages breaks that chain. The
Foo -> FooCtx(context.Background(), ...) compat-wrapper shape is
allowed; everything else needs a justified //nolint:ctxflow.`

// Analyzer is the ctxflow pass.
var Analyzer = &analysis.Analyzer{
	Name:     "ctxflow",
	Doc:      doc,
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

var packages string

func init() {
	lintutil.RegisterAuditFlag(&Analyzer.Flags)
	Analyzer.Flags.StringVar(&packages, "packages",
		"swrec/internal/core,swrec/internal/engine,swrec/internal/trust,swrec/internal/profile",
		"comma-separated import-path prefixes the invariant applies to")
}

func run(pass *analysis.Pass) (any, error) {
	if !lintutil.PkgMatch(pass.Pkg.Path(), packages) {
		return nil, nil
	}
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	sup := lintutil.New(pass, "ctxflow")

	nodeFilter := []ast.Node{(*ast.CallExpr)(nil)}
	ins.WithStack(nodeFilter, func(n ast.Node, push bool, stack []ast.Node) bool {
		if !push {
			return false
		}
		call := n.(*ast.CallExpr)
		name := contextRootCall(pass, call)
		if name == "" {
			return true
		}
		if lintutil.IsTestFile(pass, stack[0].(*ast.File)) {
			return true
		}
		if isCompatDelegation(call, stack) {
			return true
		}
		sup.Report(call.Pos(), "context."+name+"() detaches the cold path from the caller's deadline: thread a context.Context parameter instead (//nolint:ctxflow -- reason, if detaching is intended)")
		return true
	})
	return nil, nil
}

// contextRootCall returns "Background" or "TODO" when call is
// context.Background() / context.TODO(), else "".
func contextRootCall(pass *analysis.Pass, call *ast.CallExpr) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "context" {
		return ""
	}
	if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
		return ""
	}
	if n := fn.Name(); n == "Background" || n == "TODO" {
		return n
	}
	return ""
}

// isCompatDelegation reports whether call (context.Background()) is the
// first argument of r.FooCtx(...) inside a function declared as Foo —
// the non-ctx compatibility wrapper shape kept for the pre-deadline
// API surface.
func isCompatDelegation(call *ast.CallExpr, stack []ast.Node) bool {
	if len(stack) < 2 {
		return false
	}
	parent, ok := stack[len(stack)-2].(*ast.CallExpr)
	if !ok || len(parent.Args) == 0 || parent.Args[0] != call {
		return false
	}
	var callee string
	switch f := parent.Fun.(type) {
	case *ast.SelectorExpr:
		callee = f.Sel.Name
	case *ast.Ident:
		callee = f.Name
	default:
		return false
	}
	for i := len(stack) - 1; i >= 0; i-- {
		if fd, ok := stack[i].(*ast.FuncDecl); ok {
			return callee == fd.Name.Name+"Ctx"
		}
	}
	return false
}
