package ctxflow_test

import (
	"testing"

	"swrec/internal/analysis/analyzertest"
	"swrec/internal/analysis/ctxflow"
)

func TestCtxflow(t *testing.T) {
	analyzertest.Run(t, ctxflow.Analyzer, "swrec/internal/core")
}

// TestOutOfScopePackage guards the false-positive direction: the same
// shapes in a package off the cold path produce no diagnostics.
func TestOutOfScopePackage(t *testing.T) {
	analyzertest.Run(t, ctxflow.Analyzer, "swrec/cmd/tool")
}
