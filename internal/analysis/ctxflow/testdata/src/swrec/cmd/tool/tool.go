// Fixture guard: cmd/ packages are edges that legitimately mint root
// contexts; ctxflow must stay silent here.
package tool

import "context"

func Main() {
	ctx := context.Background()
	_ = ctx
}
