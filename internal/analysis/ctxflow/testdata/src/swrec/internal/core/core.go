// Fixture for ctxflow: shapes drawn from the real cold-path entry
// points in internal/core and internal/engine.
package core

import "context"

type Recommender struct{}

// RecommendCtx is the invariant-carrying entry point.
func (r *Recommender) RecommendCtx(ctx context.Context, n int) int { return n }

// Recommend is the documented compat-delegation shape: minting the
// root context in the non-ctx wrapper is allowed without suppression.
func (r *Recommender) Recommend(n int) int {
	return r.RecommendCtx(context.Background(), n)
}

// rank mints a root mid-computation: the canonical violation.
func (r *Recommender) rank(n int) int {
	ctx := context.Background() // want `detaches the cold path from the caller's deadline`
	_ = ctx
	return n
}

// sweep hides the root inside an argument list: still a violation.
func (r *Recommender) sweep() int {
	return r.RecommendCtx(context.TODO(), 1) // want `detaches the cold path from the caller's deadline`
}

// delegateWrongName forwards to a Ctx function that is not its own
// sibling, so the delegation exemption must not apply.
func (r *Recommender) delegateWrongName(n int) int {
	return r.RecommendCtx(context.Background(), n) // want `detaches the cold path from the caller's deadline`
}

// detachedWarmup carries a justified suppression: allowed, audited.
func (r *Recommender) detachedWarmup() {
	ctx := context.Background() //nolint:ctxflow -- warmup flight deliberately outlives any caller
	_ = ctx
}

// unjustified suppressions are inert: the diagnostic still fires.
func (r *Recommender) unjustified() {
	ctx := context.Background() //nolint:ctxflow // want `detaches the cold path from the caller's deadline`
	_ = ctx
}

// threaded takes and passes a context: the compliant shape.
func (r *Recommender) threaded(ctx context.Context, n int) int {
	return r.RecommendCtx(ctx, n)
}
