// Package context is a fixture stub: go/types identity is path-based,
// so this stands in for the real package without source-importing it.
package context

type Context interface{ Done() <-chan struct{} }

type emptyCtx struct{}

func (emptyCtx) Done() <-chan struct{} { return nil }

func Background() Context { return emptyCtx{} }

func TODO() Context { return emptyCtx{} }

type CancelFunc func()

func WithCancel(parent Context) (Context, CancelFunc) { return parent, func() {} }
