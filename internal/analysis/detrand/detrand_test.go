package detrand_test

import (
	"testing"

	"swrec/internal/analysis/analyzertest"
	"swrec/internal/analysis/detrand"
)

func TestDetrand(t *testing.T) {
	analyzertest.Run(t, detrand.Analyzer, "swrec/internal/faultinject")
}

// TestOutOfScopePackage guards the false-positive direction: the
// serving engine may read the wall clock freely (warmup timing,
// degrade budgets); only the seed-deterministic packages are scoped.
func TestOutOfScopePackage(t *testing.T) {
	analyzertest.Run(t, detrand.Analyzer, "swrec/internal/engine")
}
