// Package detrand enforces the seed-determinism invariant from the
// fault-injection PR: the packages behind the chaos suite's
// byte-identical-replay assertion (internal/faultinject) and the
// reproducible corpus/experiment generators (internal/datagen,
// internal/experiments) must derive every varying quantity from the
// run's seed. Wall-clock reads, the global math/rand state, and
// printing straight out of a map iteration all make two runs with the
// same seed diverge.
//
// Flagged shapes:
//   - time.Now / time.Since
//   - package-level math/rand and math/rand/v2 functions that touch
//     the global generator (rand.Intn, rand.Shuffle, ...); seeded
//     constructors (rand.New, rand.NewSource, rand.NewPCG, ...) and
//     methods on an explicit *rand.Rand stay legal
//   - fmt.Print*/Fprint* directly inside a `for ... range m` over a
//     map — map order is randomized per run, so the output bytes are
//     too; collect into a slice and sort before emitting
package detrand

import (
	"go/ast"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
	"swrec/internal/analysis/lintutil"
)

const doc = `reports nondeterminism (wall clock, global rand, map-ordered output) in the seed-deterministic packages

The chaos suite asserts byte-identical WAL replay for a fixed seed;
the corpus generator and experiment harness promise reproducible runs.
time.Now, the global math/rand generator, and printing from inside a
map range all break that. Justify real wall-clock needs (latency
measurements) with //nolint:detrand -- reason.`

// Analyzer is the detrand pass.
var Analyzer = &analysis.Analyzer{
	Name:     "detrand",
	Doc:      doc,
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

var packages string

func init() {
	lintutil.RegisterAuditFlag(&Analyzer.Flags)
	Analyzer.Flags.StringVar(&packages, "packages",
		"swrec/internal/faultinject,swrec/internal/datagen,swrec/internal/experiments,swrec/internal/loadgen,swrec/internal/attack",
		"comma-separated import-path prefixes that must be seed-deterministic")
}

// seededConstructors are package-level math/rand functions that build
// an explicit, seedable generator instead of touching global state.
var seededConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewPCG": true, "NewChaCha8": true, "NewZipf": true,
}

func run(pass *analysis.Pass) (any, error) {
	if !lintutil.PkgMatch(pass.Pkg.Path(), packages) {
		return nil, nil
	}
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	sup := lintutil.New(pass, "detrand")

	nodeFilter := []ast.Node{(*ast.CallExpr)(nil), (*ast.RangeStmt)(nil)}
	ins.WithStack(nodeFilter, func(n ast.Node, push bool, stack []ast.Node) bool {
		if !push {
			return false
		}
		if lintutil.IsTestFile(pass, stack[0].(*ast.File)) {
			return false
		}
		switch node := n.(type) {
		case *ast.CallExpr:
			checkCall(pass, sup, node, stack)
		case *ast.RangeStmt:
			checkMapRange(pass, sup, node)
		}
		return true
	})
	return nil, nil
}

func checkCall(pass *analysis.Pass, sup *lintutil.Suppressions, call *ast.CallExpr, stack []ast.Node) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() != nil {
		return // methods on an explicit generator / time.Time are fine
	}
	switch fn.Pkg().Path() {
	case "time":
		if n := fn.Name(); n == "Now" || n == "Since" {
			sup.Report(call.Pos(), "time."+n+"() in a seed-deterministic package: two runs with the same seed will diverge — derive the value from the seed or simulated clock, or justify with //nolint:detrand -- reason")
		}
	case "math/rand", "math/rand/v2":
		if !seededConstructors[fn.Name()] {
			sup.Report(call.Pos(), "rand."+fn.Name()+"() uses the global generator: replay with the same seed will diverge — draw from an explicit seeded *rand.Rand (//nolint:detrand -- reason to override)")
		}
	}
}

// checkMapRange flags fmt print calls lexically inside the body of a
// range over a map: map iteration order is randomized per process, so
// anything emitted per-iteration is nondeterministic output.
func checkMapRange(pass *analysis.Pass, sup *lintutil.Suppressions, rng *ast.RangeStmt) {
	tv, ok := pass.TypesInfo.Types[rng.X]
	if !ok {
		return
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return
	}
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
		if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "fmt" {
			return true
		}
		if strings.HasPrefix(fn.Name(), "Print") || strings.HasPrefix(fn.Name(), "Fprint") {
			sup.Report(call.Pos(), "fmt."+fn.Name()+" inside a map iteration emits in randomized order: collect keys, sort, then print (//nolint:detrand -- reason to override)")
		}
		return true
	})
}
