// Package time is a fixture stub (path-based type identity).
package time

type Time struct{ ns int64 }

type Duration int64

func Now() Time { return Time{} }

func Since(t Time) Duration { return 0 }

func (t Time) Sub(u Time) Duration { return 0 }

func Unix(sec, nsec int64) Time { return Time{} }
