// Fixture guard: wall-clock reads outside the deterministic packages
// are legitimate (warmup duration, cache-age accounting).
package engine

import "time"

func warmupDuration(start time.Time) time.Duration {
	return time.Since(start)
}
