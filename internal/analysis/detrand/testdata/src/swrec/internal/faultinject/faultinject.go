// Fixture for detrand: nondeterminism shapes in the packages behind
// the chaos suite's byte-identical-replay assertion.
package faultinject

import (
	"fmt"
	"math/rand"
	"sort"
	"time"
)

// schedule reads the wall clock: two runs with one seed diverge.
func schedule() time.Time {
	return time.Now() // want `time\.Now\(\) in a seed-deterministic package`
}

func elapsed(start time.Time) time.Duration {
	return time.Since(start) // want `time\.Since\(\) in a seed-deterministic package`
}

// jitter draws from the global generator: unreplayable.
func jitter(n int) int {
	return rand.Intn(n) // want `rand\.Intn\(\) uses the global generator`
}

func shuffleHosts(hosts []string) {
	rand.Shuffle(len(hosts), func(i, j int) { // want `rand\.Shuffle\(\) uses the global generator`
		hosts[i], hosts[j] = hosts[j], hosts[i]
	})
}

// seeded draws from an explicit generator: the replayable shape.
func seeded(seed int64, n int) int {
	rng := rand.New(rand.NewSource(seed))
	rng.Shuffle(n, func(i, j int) {})
	return rng.Intn(n)
}

// dumpStats prints per-iteration from a map range: output bytes
// depend on randomized map order.
func dumpStats(stats map[string]int) {
	for host, n := range stats {
		fmt.Printf("%s=%d\n", host, n) // want `fmt\.Printf inside a map iteration`
	}
}

// dumpSorted collects, sorts, then prints: the deterministic shape.
func dumpSorted(stats map[string]int) {
	keys := make([]string, 0, len(stats))
	for host := range stats {
		keys = append(keys, host)
	}
	sort.Strings(keys)
	for _, host := range keys {
		fmt.Printf("%s=%d\n", host, stats[host])
	}
}

// measureLatency justifies its wall-clock read: wall time is the
// measured quantity, not replayed state.
func measureLatency() time.Time {
	return time.Now() //nolint:detrand -- wall-clock latency is the experiment's measured output
}
