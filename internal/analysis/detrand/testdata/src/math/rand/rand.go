// Package rand is a fixture stub for math/rand (path-based type
// identity). Package-level draws hit the stand-in for global state;
// methods on *Rand are the seeded, replayable path.
package rand

type Source interface{ Int63() int64 }

type Rand struct{ src Source }

func New(src Source) *Rand { return &Rand{src: src} }

func NewSource(seed int64) Source { return nil }

func (r *Rand) Intn(n int) int { return 0 }

func (r *Rand) Float64() float64 { return 0 }

func (r *Rand) Shuffle(n int, swap func(i, j int)) {}

func Intn(n int) int { return 0 }

func Float64() float64 { return 0 }

func Shuffle(n int, swap func(i, j int)) {}

func Perm(n int) []int { return nil }
