// Package sort is a fixture stub (path-based type identity).
package sort

func Strings(x []string) {}
