// Package fmt is a fixture stub (path-based type identity).
package fmt

func Println(a ...any) (int, error) { return 0, nil }

func Printf(format string, a ...any) (int, error) { return 0, nil }

func Sprintf(format string, a ...any) string { return "" }

func Fprintf(w any, format string, a ...any) (int, error) { return 0, nil }
