// Package registry is the single source of truth for the swrecvet
// analyzer suite. cmd/swrecvet registers exactly this set with the
// unitchecker, cmd/lintaudit derives the stale-suppression audit from
// it, and the cmd/swrecvet smoke test pins it — extending the suite is
// a deliberate, reviewed act that shows up in all three places at once.
package registry

import (
	"golang.org/x/tools/go/analysis"

	"swrec/internal/analysis/boundedmake"
	"swrec/internal/analysis/ctxflow"
	"swrec/internal/analysis/detrand"
	"swrec/internal/analysis/durableerr"
	"swrec/internal/analysis/expvarname"
	"swrec/internal/analysis/goleak"
	"swrec/internal/analysis/hotalloc"
	"swrec/internal/analysis/snapshotfreeze"
	"swrec/internal/analysis/snapshotpin"
	"swrec/internal/analysis/urikey"
)

// all is the full suite, sorted by analyzer name.
var all = []*analysis.Analyzer{
	boundedmake.Analyzer,
	ctxflow.Analyzer,
	detrand.Analyzer,
	durableerr.Analyzer,
	expvarname.Analyzer,
	goleak.Analyzer,
	hotalloc.Analyzer,
	snapshotfreeze.Analyzer,
	snapshotpin.Analyzer,
	urikey.Analyzer,
}

// All returns the registered analyzers in name order. The slice is
// shared; callers must not modify it.
func All() []*analysis.Analyzer { return all }

// Names returns the registered analyzer names in order.
func Names() []string {
	names := make([]string, len(all))
	for i, a := range all {
		names[i] = a.Name
	}
	return names
}
