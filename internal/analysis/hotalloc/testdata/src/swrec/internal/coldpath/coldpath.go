// Package coldpath is the false-positive guard fixture: it allocates
// in every way hotalloc knows about, but carries no //swrec:hotpath
// directive, so the analyzer must stay entirely silent.
package coldpath

import "fmt"

// Build allocates freely — unannotated code is out of scope.
func Build(n int) map[int32][]float64 {
	out := make(map[int32][]float64, n)
	for i := 0; i < n; i++ {
		out[int32(i)] = append([]float64{}, float64(i))
	}
	_ = fmt.Sprintf("built %d", n)
	go func() {}()
	return out
}

// Concat is another unannotated allocator.
func Concat(a, b string) []byte {
	return []byte(a + b)
}
