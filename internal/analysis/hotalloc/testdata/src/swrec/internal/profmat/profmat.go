// Package profmat is a fixture miniature of the compiled-kernel
// package: annotated zero-allocation kernels beside a known-escaping
// variant that must fail.
package profmat

import "fmt"

// Row is a compiled profile row.
type Row struct {
	Keys []int32
	Vals []float64
	Norm float64
}

// Dot is the clean merge-join kernel: index walks over preallocated
// slices, value returns, no allocation — the analyzer must stay silent.
//
//swrec:hotpath
func Dot(a, b *Row) float64 {
	var s float64
	i, j := 0, 0
	for i < len(a.Keys) && j < len(b.Keys) {
		ka, kb := a.Keys[i], b.Keys[j]
		switch {
		case ka == kb:
			s += a.Vals[i] * b.Vals[j]
			i++
			j++
		case ka < kb:
			i++
		default:
			j++
		}
	}
	return clamp(s)
}

// clamp is a same-package callee of a hotpath root: checked
// transitively, and clean.
func clamp(x float64) float64 {
	if x > 1 {
		return 1
	}
	return x
}

// Cosine returns a struct value — stack-constructible composite
// literals are allowed.
//
//swrec:hotpath
func Cosine(a, b *Row) Row {
	return Row{Norm: Dot(a, b)}
}

// DotEscaping is the known-escaping kernel variant: it materializes the
// common dimensions and formats a debug string.
//
//swrec:hotpath
func DotEscaping(a, b *Row) float64 {
	common := make([]int32, 0, len(a.Keys)) // want `make allocates`
	for i := range a.Keys {
		common = append(common, a.Keys[i]) // want `append may grow its backing array`
	}
	_ = fmt.Sprintf("common=%d", len(common)) // want `fmt.Sprintf reflects and allocates`
	return 0
}

// escapeHelper is reached from the annotated root below; diagnostics
// land in the callee with the root named.
func escapeHelper(keys []int32) []int32 {
	out := []int32{0} // want `slice literal allocates its backing array`
	for _, k := range keys {
		out = append(out, k) // want `append may grow its backing array`
	}
	return out
}

// DotViaHelper launders its allocation through a same-package callee.
//
//swrec:hotpath
func DotViaHelper(a *Row) int {
	return len(escapeHelper(a.Keys))
}

// sink accepts an interface — boxing a non-pointer concrete value into
// it allocates.
func sink(v any) {}

// Boxers exercises the remaining allocating constructs.
//
//swrec:hotpath
func Boxers(a *Row, m map[int32]float64, s string) {
	sink(a.Norm)  // want `interface argument boxes a float64 value and allocates`
	sink(a)       // a *Row is pointer-shaped: no boxing allocation
	m[0] = 1      // want `map write may allocate`
	_ = s + "x"   // want `string concatenation allocates`
	_ = []byte(s) // want `string-to-\[\]byte/\[\]rune conversion allocates`
	b := &Row{}   // want `&Row\{...\} allocates`
	_ = b
	f := func() {} // want `function literal allocates a closure`
	f()
	go f() // want `go statement allocates a goroutine`
}

// Suppressed documents its one deliberate amortized allocation; the
// unjustified form right below it stays visible.
//
//swrec:hotpath
func Suppressed(n int) []int32 {
	buf := make([]int32, n) //nolint:hotalloc -- fixture: one-time lazy init, amortized to zero per call
	// The next suppression carries no "-- reason" clause, so it is
	// inert and the diagnostic keeps firing.
	//nolint:hotalloc
	bad := make([]int32, n) // want `make allocates`
	_ = bad
	return buf
}
