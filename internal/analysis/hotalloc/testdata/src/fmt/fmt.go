// Package fmt is a fixture stub (path-based type identity).
package fmt

func Sprintf(format string, a ...any) string { return "" }

func Errorf(format string, a ...any) error { return nil }
