// Package hotalloc machine-checks the zero-allocation claims of the
// compiled serving substrate: a function whose doc comment carries the
// //swrec:hotpath directive — the profmat merge-join and dense-scatter
// kernels, the engine's warm cache-read path, the loadgen histogram
// record path — must not heap-allocate, and neither may any same-package
// function it (transitively) calls. The "zero allocations" comments
// those kernels were born with (PR 5) are enforced here as facts rather
// than re-measured by benchmarks alone: a benchmark catches a regression
// only at the scale it runs, while the analyzer catches the allocating
// construct itself.
//
// The checker flags the constructs that the gc compiler lowers to a heap
// allocation (or that may allocate on growth):
//
//   - make, new, and slice/map composite literals; &T{...}
//   - append (backing-array growth) and map-index writes (bucket growth)
//   - string concatenation and string <-> []byte / []rune conversions
//   - boxing a non-pointer-shaped concrete value into an interface
//     (arguments, assignments, returns, conversions)
//   - function literals (closure capture), method values, go statements
//   - any call into package fmt (formatting reflects and allocates)
//   - calling a variadic function with arguments (the ... slice)
//
// This is the go/ast + go/types approximation of the SSA formulation:
// without escape analysis it cannot prove a composite literal escapes,
// so plain struct value literals and stack-returnable values are
// allowed, and calls into other packages are trusted (their own hot
// functions carry their own annotations). The approximation errs on the
// side of flagging; a deliberate amortized allocation (a lazy one-time
// make, a cold error path) documents itself with a justified
// //nolint:hotalloc -- reason, which is the audit trail the analyzer
// exists to force.
package hotalloc

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
	"swrec/internal/analysis/lintutil"
)

const doc = `reports heap allocations in //swrec:hotpath functions and their same-package callees

A function marked //swrec:hotpath (profmat kernels, engine warm reads,
loadgen histogram records) claims zero allocations per call. hotalloc
flags every construct the compiler lowers to a heap allocation inside
the marked function and every same-package function it calls. Justify
deliberate amortized allocations with //nolint:hotalloc -- reason.`

// Directive marks a function as allocation-free hot-path code.
const Directive = "//swrec:hotpath"

// Analyzer is the hotalloc pass.
var Analyzer = &analysis.Analyzer{
	Name:     "hotalloc",
	Doc:      doc,
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

func init() {
	lintutil.RegisterAuditFlag(&Analyzer.Flags)
}

// hotFunc records how a function entered the hot set: directly
// annotated (root == "") or reached from an annotated root.
type hotFunc struct {
	decl *ast.FuncDecl
	root string
}

func run(pass *analysis.Pass) (any, error) {
	sup := lintutil.New(pass, "hotalloc")

	// Index this package's function declarations and find the annotated
	// roots. Test files are exempt wholesale: benchmarks and fixtures
	// allocate freely.
	decls := make(map[*types.Func]*ast.FuncDecl)
	var roots []*types.Func
	for _, f := range pass.Files {
		if lintutil.IsTestFile(pass, f) {
			continue
		}
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			decls[fn] = fd
			if annotated(fd) {
				roots = append(roots, fn)
			}
		}
	}
	if len(roots) == 0 {
		return nil, nil
	}

	// Close the hot set over same-package static calls: a kernel is only
	// allocation-free if its helpers are. Cross-package callees are
	// trusted — they annotate their own hot paths.
	hot := make(map[*types.Func]hotFunc)
	var work []*types.Func
	for _, fn := range roots {
		hot[fn] = hotFunc{decl: decls[fn]}
		work = append(work, fn)
	}
	for len(work) > 0 {
		fn := work[0]
		work = work[1:]
		h := hot[fn]
		root := h.root
		if root == "" {
			root = fn.Name()
		}
		ast.Inspect(h.decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := staticCallee(pass, call)
			if callee == nil {
				return true
			}
			if fd, ok := decls[callee]; ok {
				if _, seen := hot[callee]; !seen {
					hot[callee] = hotFunc{decl: fd, root: root}
					work = append(work, callee)
				}
			}
			return true
		})
	}

	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	nodeFilter := []ast.Node{
		(*ast.CallExpr)(nil),
		(*ast.CompositeLit)(nil),
		(*ast.UnaryExpr)(nil),
		(*ast.FuncLit)(nil),
		(*ast.GoStmt)(nil),
		(*ast.BinaryExpr)(nil),
		(*ast.AssignStmt)(nil),
		(*ast.ValueSpec)(nil),
		(*ast.ReturnStmt)(nil),
	}
	ins.WithStack(nodeFilter, func(n ast.Node, push bool, stack []ast.Node) bool {
		if !push {
			return true
		}
		h, where, ok := enclosingHot(pass, hot, stack)
		if !ok {
			return true
		}
		c := &checker{pass: pass, sup: sup, where: where}
		switch node := n.(type) {
		case *ast.CallExpr:
			c.call(node)
		case *ast.CompositeLit:
			c.compositeLit(node)
		case *ast.UnaryExpr:
			if node.Op == token.AND {
				if lit, ok := ast.Unparen(node.X).(*ast.CompositeLit); ok {
					c.report(node.Pos(), "&"+typeName(pass, lit)+"{...} allocates")
				}
			}
		case *ast.FuncLit:
			c.report(node.Pos(), "function literal allocates a closure")
		case *ast.GoStmt:
			c.report(node.Pos(), "go statement allocates a goroutine")
		case *ast.BinaryExpr:
			if node.Op == token.ADD && isString(pass, node) {
				c.report(node.Pos(), "string concatenation allocates")
			}
		case *ast.AssignStmt:
			c.assign(node)
		case *ast.ValueSpec:
			c.valueSpec(node)
		case *ast.ReturnStmt:
			c.returnStmt(node, stack, h)
		}
		return true
	})
	return nil, nil
}

// annotated reports whether the declaration's doc comment carries the
// //swrec:hotpath directive.
func annotated(fd *ast.FuncDecl) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if strings.TrimSpace(c.Text) == Directive ||
			strings.HasPrefix(strings.TrimSpace(c.Text), Directive+" ") {
			return true
		}
	}
	return false
}

// enclosingHot resolves the FuncDecl a node lives in and reports
// whether it belongs to the hot set, along with the human-readable
// provenance used in diagnostics.
func enclosingHot(pass *analysis.Pass, hot map[*types.Func]hotFunc, stack []ast.Node) (hotFunc, string, bool) {
	for _, n := range stack {
		fd, ok := n.(*ast.FuncDecl)
		if !ok {
			continue
		}
		fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
		if !ok {
			return hotFunc{}, "", false
		}
		h, ok := hot[fn]
		if !ok {
			return hotFunc{}, "", false
		}
		where := "in " + Directive + " " + fn.Name()
		if h.root != "" {
			where = "in " + fn.Name() + " (reached from " + Directive + " " + h.root + ")"
		}
		return h, where, true
	}
	return hotFunc{}, "", false
}

// staticCallee resolves a call to the *types.Func it statically invokes
// (generic instances normalized to their origin), or nil for builtins,
// conversions, function-typed variables, and interface dispatch.
func staticCallee(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = pass.TypesInfo.Uses[fun]
	case *ast.SelectorExpr:
		obj = pass.TypesInfo.Uses[fun.Sel]
	case *ast.IndexExpr: // explicit generic instantiation f[T](...)
		if id, ok := ast.Unparen(fun.X).(*ast.Ident); ok {
			obj = pass.TypesInfo.Uses[id]
		}
	}
	fn, ok := obj.(*types.Func)
	if !ok {
		return nil
	}
	return fn.Origin()
}

// checker reports allocation sites with shared provenance context.
type checker struct {
	pass  *analysis.Pass
	sup   *lintutil.Suppressions
	where string
}

func (c *checker) report(pos token.Pos, what string) {
	c.sup.Report(pos, what+" "+c.where+" — hoist it out of the hot path, reuse a buffer, or justify with //nolint:hotalloc -- reason")
}

// call checks one call expression: builtins that allocate, conversions,
// fmt, interface-boxing arguments, and variadic argument slices.
func (c *checker) call(call *ast.CallExpr) {
	info := c.pass.TypesInfo
	fun := ast.Unparen(call.Fun)

	// Conversion T(x).
	if tv, ok := info.Types[fun]; ok && tv.IsType() {
		c.conversion(tv.Type, call)
		return
	}

	// Builtins.
	if id, ok := fun.(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make":
				c.report(call.Pos(), "make allocates")
			case "new":
				c.report(call.Pos(), "new allocates")
			case "append":
				c.report(call.Pos(), "append may grow its backing array")
			}
			return
		}
	}

	// Calls into package fmt.
	if sel, ok := fun.(*ast.SelectorExpr); ok {
		if fn, ok := info.Uses[sel.Sel].(*types.Func); ok && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
			c.report(call.Pos(), "fmt."+fn.Name()+" reflects and allocates")
			return
		}
	}

	sig, ok := typeAsSignature(info.Types[call.Fun].Type)
	if !ok {
		return
	}
	// Interface boxing at argument positions.
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis != token.NoPos {
				if i == params.Len()-1 {
					pt = params.At(params.Len() - 1).Type() // x... passes the slice through
				}
			} else {
				pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
			}
		case i < params.Len():
			pt = params.At(i).Type()
		}
		if pt != nil {
			c.boxing(arg, pt, "argument")
		}
	}
	// A variadic call with arguments allocates the ... backing slice.
	if sig.Variadic() && call.Ellipsis == token.NoPos && len(call.Args) >= params.Len() {
		c.report(call.Pos(), "variadic call allocates its argument slice")
	}
}

// conversion flags string <-> byte/rune-slice conversions and
// conversions that box a concrete value into an interface.
func (c *checker) conversion(to types.Type, call *ast.CallExpr) {
	if len(call.Args) != 1 {
		return
	}
	fromTV, ok := c.pass.TypesInfo.Types[call.Args[0]]
	if !ok {
		return
	}
	from := fromTV.Type
	switch {
	case isStringType(to) && isByteOrRuneSlice(from):
		c.report(call.Pos(), "[]byte/[]rune-to-string conversion allocates")
	case isByteOrRuneSlice(to) && isStringType(from):
		c.report(call.Pos(), "string-to-[]byte/[]rune conversion allocates")
	default:
		c.boxing(call.Args[0], to, "conversion")
	}
}

// assign checks map-index writes, string +=, and interface boxing on
// plain assignments.
func (c *checker) assign(as *ast.AssignStmt) {
	info := c.pass.TypesInfo
	for _, lhs := range as.Lhs {
		if ix, ok := ast.Unparen(lhs).(*ast.IndexExpr); ok {
			if tv, ok := info.Types[ix.X]; ok {
				if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
					c.report(lhs.Pos(), "map write may allocate (bucket growth)")
				}
			}
		}
	}
	if as.Tok == token.ADD_ASSIGN && len(as.Lhs) == 1 && isString(c.pass, as.Lhs[0]) {
		c.report(as.Pos(), "string concatenation allocates")
	}
	if (as.Tok == token.ASSIGN || as.Tok == token.DEFINE) && len(as.Lhs) == len(as.Rhs) {
		for i, lhs := range as.Lhs {
			lt, ok := info.Types[lhs]
			if !ok && as.Tok == token.DEFINE {
				continue // x := concrete — x takes the concrete type, no boxing
			}
			if ok {
				c.boxing(as.Rhs[i], lt.Type, "assignment")
			}
		}
	}
}

// valueSpec checks var declarations with interface-typed targets.
func (c *checker) valueSpec(vs *ast.ValueSpec) {
	if vs.Type == nil || len(vs.Values) == 0 {
		return
	}
	tv, ok := c.pass.TypesInfo.Types[vs.Type]
	if !ok {
		return
	}
	for _, v := range vs.Values {
		c.boxing(v, tv.Type, "assignment")
	}
}

// returnStmt checks interface boxing against the innermost enclosing
// function's result types.
func (c *checker) returnStmt(ret *ast.ReturnStmt, stack []ast.Node, h hotFunc) {
	sig := enclosingSignature(c.pass, stack, h)
	if sig == nil {
		return
	}
	res := sig.Results()
	if len(ret.Results) != res.Len() {
		return // naked return or comma-ok spread: nothing new is boxed here
	}
	for i, r := range ret.Results {
		c.boxing(r, res.At(i).Type(), "return")
	}
}

// boxing reports expr if assigning it to a target of type to would box a
// non-pointer-shaped concrete value into an interface.
func (c *checker) boxing(expr ast.Expr, to types.Type, what string) {
	if _, ok := to.Underlying().(*types.Interface); !ok {
		return
	}
	tv, ok := c.pass.TypesInfo.Types[expr]
	if !ok {
		return
	}
	from := tv.Type
	if from == nil || tv.IsNil() {
		return
	}
	if _, ok := from.Underlying().(*types.Interface); ok {
		return // interface-to-interface carries the existing box
	}
	if pointerShaped(from) {
		return // the value is the data word; no allocation
	}
	c.report(expr.Pos(), "interface "+what+" boxes a "+from.String()+" value and allocates")
}

// compositeLit flags slice and map literals; plain struct and array
// value literals are stack-constructible and allowed (the &T{...} form
// is handled at the UnaryExpr).
func (c *checker) compositeLit(lit *ast.CompositeLit) {
	tv, ok := c.pass.TypesInfo.Types[lit]
	if !ok {
		return
	}
	switch tv.Type.Underlying().(type) {
	case *types.Slice:
		c.report(lit.Pos(), "slice literal allocates its backing array")
	case *types.Map:
		c.report(lit.Pos(), "map literal allocates")
	}
}

// enclosingSignature returns the innermost function literal's signature
// if the return sits inside one, else the hot declaration's.
func enclosingSignature(pass *analysis.Pass, stack []ast.Node, h hotFunc) *types.Signature {
	for i := len(stack) - 1; i >= 0; i-- {
		switch n := stack[i].(type) {
		case *ast.FuncLit:
			if sig, ok := typeAsSignature(pass.TypesInfo.Types[n].Type); ok {
				return sig
			}
			return nil
		case *ast.FuncDecl:
			if fn, ok := pass.TypesInfo.Defs[n.Name].(*types.Func); ok {
				if sig, ok := typeAsSignature(fn.Type()); ok {
					return sig
				}
			}
			return nil
		}
	}
	return nil
}

func typeAsSignature(t types.Type) (*types.Signature, bool) {
	if t == nil {
		return nil, false
	}
	sig, ok := t.Underlying().(*types.Signature)
	return sig, ok
}

func typeName(pass *analysis.Pass, lit *ast.CompositeLit) string {
	if tv, ok := pass.TypesInfo.Types[lit]; ok {
		if named, ok := tv.Type.(*types.Named); ok {
			return named.Obj().Name()
		}
		return tv.Type.String()
	}
	return "T"
}

func isString(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	return ok && isStringType(tv.Type)
}

func isStringType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune || b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}

// pointerShaped reports whether a value of type t fits the interface
// data word directly, so boxing it does not allocate.
func pointerShaped(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	case *types.Basic:
		return u.Kind() == types.UnsafePointer
	}
	return false
}
