package hotalloc_test

import (
	"testing"

	"swrec/internal/analysis/analyzertest"
	"swrec/internal/analysis/hotalloc"
)

// TestKernels runs the analyzer over a miniature of the profmat
// kernels: the clean merge-join stays silent, the known-escaping
// variant fails on every allocating construct, and same-package callees
// of an annotated root are checked transitively.
func TestKernels(t *testing.T) {
	analyzertest.Run(t, hotalloc.Analyzer, "swrec/internal/profmat")
}

// TestUnannotated guards the false-positive direction: a package with
// no //swrec:hotpath directive is entirely out of scope, no matter how
// freely it allocates.
func TestUnannotated(t *testing.T) {
	analyzertest.Run(t, hotalloc.Analyzer, "swrec/internal/coldpath")
}
