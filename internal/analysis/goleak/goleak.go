// Package goleak enforces the goroutine-lifecycle invariant running
// through every concurrent subsystem (engine singleflight, ingest
// applier, crawler fetch pool): a `go` statement in library code must
// tie the spawned goroutine to some lifecycle its owner can observe —
// a sync.WaitGroup, a done/stop channel, or a context. A goroutine
// with none of those is unjoinable and undrainable: Close returns,
// tests pass, and the goroutine keeps mutating state behind the next
// epoch.
//
// Evidence accepted (in the goroutine body, or for calls into another
// package, in the arguments): referencing a context.Context, sending
// on / receiving from / closing / ranging over a channel, a select
// statement, or calling (*sync.WaitGroup).Done or .Add. Same-package
// callees (`go p.run()`) are resolved and their bodies inspected.
package goleak

import (
	"go/ast"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
	"swrec/internal/analysis/lintutil"
)

const doc = `reports naked go statements in library code with no observable lifecycle

Every goroutine spawned by swrec library code must be joinable or
cancellable: tie it to a sync.WaitGroup, a done channel, or a
context.Context. A fire-and-forget goroutine outlives Close and the
epoch that spawned it. Justify true fire-and-forget spawns with
//nolint:goleak -- reason.`

// Analyzer is the goleak pass.
var Analyzer = &analysis.Analyzer{
	Name:     "goleak",
	Doc:      doc,
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

var packages string

func init() {
	lintutil.RegisterAuditFlag(&Analyzer.Flags)
	Analyzer.Flags.StringVar(&packages, "packages",
		"swrec/internal",
		"comma-separated import-path prefixes of library code (cmd/ and examples/ are callers, not library)")
}

func run(pass *analysis.Pass) (any, error) {
	if !lintutil.PkgMatch(pass.Pkg.Path(), packages) {
		return nil, nil
	}
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	sup := lintutil.New(pass, "goleak")
	decls := funcDecls(pass)

	nodeFilter := []ast.Node{(*ast.GoStmt)(nil)}
	ins.WithStack(nodeFilter, func(n ast.Node, push bool, stack []ast.Node) bool {
		if !push {
			return false
		}
		if lintutil.IsTestFile(pass, stack[0].(*ast.File)) {
			return false
		}
		g := n.(*ast.GoStmt)
		if tied(pass, decls, g.Call, 0) {
			return true
		}
		sup.Report(g.Pos(), "goroutine has no observable lifecycle: tie it to a sync.WaitGroup, done channel, or context.Context so Close/Swap can drain it (//nolint:goleak -- reason for true fire-and-forget)")
		return true
	})
	return nil, nil
}

// funcDecls indexes this package's function declarations by their
// types object so `go p.run()` can be resolved to run's body.
func funcDecls(pass *analysis.Pass) map[*types.Func]*ast.FuncDecl {
	m := make(map[*types.Func]*ast.FuncDecl)
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok {
				if fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
					m[fn] = fd
				}
			}
		}
	}
	return m
}

const maxResolveDepth = 4

// tied reports whether the spawned call carries lifecycle evidence.
func tied(pass *analysis.Pass, decls map[*types.Func]*ast.FuncDecl, call *ast.CallExpr, depth int) bool {
	// Lifecycle machinery passed as an argument counts regardless of
	// where the callee lives: go run(ctx), go drain(done).
	for _, arg := range call.Args {
		if tv, ok := pass.TypesInfo.Types[arg]; ok && lifecycleType(tv.Type) {
			return true
		}
	}
	switch fun := call.Fun.(type) {
	case *ast.FuncLit:
		return bodyTied(pass, fun.Body)
	default:
		if depth >= maxResolveDepth {
			return false
		}
		var obj types.Object
		switch f := fun.(type) {
		case *ast.Ident:
			obj = pass.TypesInfo.Uses[f]
		case *ast.SelectorExpr:
			obj = pass.TypesInfo.Uses[f.Sel]
		}
		if fn, ok := obj.(*types.Func); ok {
			if fd, ok := decls[fn]; ok && fd.Body != nil {
				return bodyTied(pass, fd.Body)
			}
		}
		return false
	}
}

// bodyTied scans a goroutine body for lifecycle evidence.
func bodyTied(pass *analysis.Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch node := n.(type) {
		case *ast.SendStmt:
			found = true
		case *ast.SelectStmt:
			found = true
		case *ast.UnaryExpr:
			if node.Op.String() == "<-" {
				found = true
			}
		case *ast.RangeStmt:
			if tv, ok := pass.TypesInfo.Types[node.X]; ok {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					found = true
				}
			}
		case *ast.CallExpr:
			switch f := node.Fun.(type) {
			case *ast.Ident:
				if _, isBuiltin := pass.TypesInfo.Uses[f].(*types.Builtin); isBuiltin && f.Name == "close" {
					found = true // builtin close(ch)
				}
			case *ast.SelectorExpr:
				if waitGroupMethod(pass, f) {
					found = true
				}
			}
		case *ast.Ident:
			if obj := pass.TypesInfo.Uses[node]; obj != nil && lifecycleType(obj.Type()) {
				found = true
			}
		}
		return !found
	})
	return found
}

// lifecycleType reports whether t is context.Context, a channel, or a
// (*)sync.WaitGroup — the three lifecycle carriers.
func lifecycleType(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		if obj.Pkg() != nil {
			full := obj.Pkg().Path() + "." + obj.Name()
			if full == "context.Context" || full == "sync.WaitGroup" {
				return true
			}
		}
	}
	_, isChan := t.Underlying().(*types.Chan)
	return isChan
}

// waitGroupMethod reports whether sel is a Done/Add/Wait call on a
// sync.WaitGroup.
func waitGroupMethod(pass *analysis.Pass, sel *ast.SelectorExpr) bool {
	name := sel.Sel.Name
	if name != "Done" && name != "Add" && name != "Wait" {
		return false
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	return lifecycleRecv(sig.Recv().Type())
}

func lifecycleRecv(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Pkg().Path() == "sync" && named.Obj().Name() == "WaitGroup"
}
