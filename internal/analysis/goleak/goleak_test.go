package goleak_test

import (
	"testing"

	"swrec/internal/analysis/analyzertest"
	"swrec/internal/analysis/goleak"
)

func TestGoleak(t *testing.T) {
	analyzertest.Run(t, goleak.Analyzer, "swrec/internal/engine")
}

// TestOutOfScopePackage guards the false-positive direction: cmd/ and
// examples/ are callers, not library code; their goroutines die with
// the process.
func TestOutOfScopePackage(t *testing.T) {
	analyzertest.Run(t, goleak.Analyzer, "swrec/cmd/tool")
}
