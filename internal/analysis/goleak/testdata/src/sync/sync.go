// Package sync is a fixture stub (path-based type identity).
package sync

type WaitGroup struct{ n int }

func (wg *WaitGroup) Add(delta int) {}

func (wg *WaitGroup) Done() {}

func (wg *WaitGroup) Wait() {}

type Mutex struct{ locked bool }

func (m *Mutex) Lock() {}

func (m *Mutex) Unlock() {}
