// Package context is a fixture stub (path-based type identity).
package context

type Context interface{ Done() <-chan struct{} }

type emptyCtx struct{}

func (emptyCtx) Done() <-chan struct{} { return nil }

func Background() Context { return emptyCtx{} }
