// Fixture guard: binaries may fire-and-forget; goleak scopes library
// code only.
package tool

func Main() {
	go func() {
		select {}
	}()
}
