// Fixture for goleak: goroutine-lifecycle shapes drawn from the real
// engine singleflight, ingest applier, and crawler worker pool.
package engine

import (
	"context"
	"sync"

	"swrec/internal/logsink"
)

type pipeline struct {
	queue chan int
	done  chan struct{}
}

// nakedSpawn is the canonical violation: nothing can join or cancel it.
func nakedSpawn() {
	go func() { // want `goroutine has no observable lifecycle`
		work()
	}()
}

// spawnMethodLeak spawns a same-package method whose body carries no
// lifecycle either: resolved and flagged.
func (p *pipeline) spawnMethodLeak() {
	go p.leak() // want `goroutine has no observable lifecycle`
}

func (p *pipeline) leak() {
	for {
		work()
	}
}

// spawnForeign calls into another package with no lifecycle argument:
// unresolvable, so it must carry evidence in the args — it does not.
func spawnForeign() {
	go logsink.Drain() // want `goroutine has no observable lifecycle`
}

// fireAndForget documents itself: the justified suppression is the
// audit trail for true fire-and-forget spawns.
func fireAndForget() {
	go func() { //nolint:goleak -- metrics flush; process-lifetime goroutine by design
		work()
	}()
}

// waitGroupPool is the crawler-worker shape: joined via WaitGroup.
func waitGroupPool(jobs []int) {
	var wg sync.WaitGroup
	for range jobs {
		wg.Add(1)
		go func() {
			defer wg.Done()
			work()
		}()
	}
	wg.Wait()
}

// doneChannel is the singleflight shape: the goroutine publishes its
// completion by closing a channel.
func doneChannel() <-chan struct{} {
	done := make(chan struct{})
	go func() {
		work()
		close(done)
	}()
	return done
}

// drainLoop is the ingest-applier shape: `go p.run()` resolves to a
// body that ranges over the pipeline's queue channel.
func (p *pipeline) drainLoop() {
	go p.run()
}

func (p *pipeline) run() {
	for item := range p.queue {
		_ = item
	}
}

// ctxWorker receives its cancellation signal as a context.
func ctxWorker(ctx context.Context) {
	go func() {
		<-ctx.Done()
	}()
}

// foreignWithCtx passes the lifecycle into the opaque callee: the
// arguments carry the evidence.
func foreignWithCtx(ctx context.Context) {
	go logsink.DrainCtx(ctx)
}

// selectWorker waits on its stop channel via select.
func (p *pipeline) selectWorker() {
	go func() {
		select {
		case <-p.done:
		case item := <-p.queue:
			_ = item
		}
	}()
}

func work() {}
