// Fixture dependency: an out-of-package callee whose body goleak
// cannot see — lifecycle evidence must come from the call's arguments.
package logsink

import "context"

func Drain() {}

func DrainCtx(ctx context.Context) {}
