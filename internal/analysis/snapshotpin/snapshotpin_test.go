package snapshotpin_test

import (
	"testing"

	"swrec/internal/analysis/analyzertest"
	"swrec/internal/analysis/snapshotpin"
)

func TestSnapshotpin(t *testing.T) {
	analyzertest.Run(t, snapshotpin.Analyzer, "swrec/internal/api")
}

// TestAllowedPackage guards the false-positive direction: the engine
// itself pins communities by design and must stay unflagged.
func TestAllowedPackage(t *testing.T) {
	analyzertest.Run(t, snapshotpin.Analyzer, "swrec/internal/engine")
}
