// Package model is a fixture stub for swrec/internal/model: path-based
// type identity makes it indistinguishable from the real package.
package model

type AgentID string

type Community struct {
	name string
}

func (c *Community) Name() string { return c.name }
