// Fixture for snapshotpin: retention shapes outside the epoch-owning
// packages, drawn from the kinds of handler/session caches that would
// silently serve a dead epoch after Engine.Swap.
package api

import (
	"swrec/internal/engine"
	"swrec/internal/model"
)

type Server struct {
	comm *model.Community // want `struct field pins swrec/internal/model\.Community`
	name string
}

type sessionCache struct {
	bySession map[string]*model.Community // want `struct field pins swrec/internal/model\.Community`
}

type snapHolder struct {
	snap *engine.Snapshot // want `struct field pins swrec/internal/engine\.Snapshot`
}

type byValue struct {
	comm model.Community // want `struct field pins swrec/internal/model\.Community`
}

type sliceHolder struct {
	epochs []*model.Community // want `struct field pins swrec/internal/model\.Community`
}

// perSnapshotView is a legitimate bounded-lifetime owner: the
// justified suppression is the audit trail.
type perSnapshotView struct {
	comm *model.Community //nolint:snapshotpin -- owned by the snapshot that builds it; never outlives its epoch
}

// okServer holds only identifiers and re-resolves the community per
// request: the compliant shape.
type okServer struct {
	active model.AgentID
	names  []string
}

// passThrough uses the community as a parameter, not a field: fine.
func passThrough(c *model.Community) string { return c.Name() }
