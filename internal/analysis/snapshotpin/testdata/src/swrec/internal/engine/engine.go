// Package engine is a fixture stub for swrec/internal/engine — both
// the definition site of the Snapshot handle and an allowlisted
// package that may pin communities (it owns the epoch lifecycle).
package engine

import "swrec/internal/model"

type Snapshot struct {
	comm  *model.Community // allowed: engine owns the swap
	epoch uint64
}

func (s *Snapshot) Community() *model.Community { return s.comm }
