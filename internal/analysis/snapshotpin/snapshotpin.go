// Package snapshotpin enforces the epoch-isolation invariant from the
// serving-engine PR: a *model.Community (or an engine snapshot handle)
// must not be pinned in a struct field outside the packages that own
// the epoch lifecycle (internal/engine swaps them, internal/ingest
// builds them, internal/model defines them). A field retaining a
// community across Engine.Swap keeps serving a dead epoch: reads look
// healthy but never see another write.
//
// Retention inside a type whose lifetime is provably bounded by one
// snapshot (core.Recommender, cf.Filter, ...) is legitimate — and must
// say so with a justified //nolint:snapshotpin on the field, which is
// exactly the audit trail this analyzer exists to force.
package snapshotpin

import (
	"go/ast"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
	"swrec/internal/analysis/lintutil"
)

const doc = `reports struct fields pinning *model.Community or a snapshot handle outside the epoch-owning packages

Epoch isolation (engine.Swap) only works if nothing outside
internal/engine and internal/ingest retains a community or snapshot
across the swap. Fields doing so serve a dead epoch silently. Bounded
per-snapshot owners document themselves with //nolint:snapshotpin.`

// Analyzer is the snapshotpin pass.
var Analyzer = &analysis.Analyzer{
	Name:     "snapshotpin",
	Doc:      doc,
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

var (
	pinned string
	allow  string
)

func init() {
	lintutil.RegisterAuditFlag(&Analyzer.Flags)
	Analyzer.Flags.StringVar(&pinned, "types",
		"swrec/internal/model.Community,swrec/internal/engine.Snapshot",
		"comma-separated pkgpath.TypeName list of epoch-scoped types")
	Analyzer.Flags.StringVar(&allow, "allow",
		"swrec/internal/engine,swrec/internal/ingest,swrec/internal/model",
		"comma-separated import-path prefixes allowed to pin those types")
}

func run(pass *analysis.Pass) (any, error) {
	if lintutil.PkgMatch(pass.Pkg.Path(), allow) {
		return nil, nil
	}
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	sup := lintutil.New(pass, "snapshotpin")

	nodeFilter := []ast.Node{(*ast.StructType)(nil)}
	ins.WithStack(nodeFilter, func(n ast.Node, push bool, stack []ast.Node) bool {
		if !push {
			return false
		}
		if lintutil.IsTestFile(pass, stack[0].(*ast.File)) {
			return false
		}
		st := n.(*ast.StructType)
		for _, field := range st.Fields.List {
			tv, ok := pass.TypesInfo.Types[field.Type]
			if !ok {
				continue
			}
			if name := pinnedIn(tv.Type, make(map[types.Type]bool)); name != "" {
				sup.Report(field.Pos(), "struct field pins "+name+": retaining it across Engine.Swap serves a dead epoch — hold it only for the scope of one request, or justify the bounded lifetime with //nolint:snapshotpin -- reason")
			}
		}
		return true
	})
	return nil, nil
}

// pinnedIn walks t through pointers, slices, arrays, maps, and
// channels and returns the qualified name of the first epoch-scoped
// named type it reaches, or "". Struct/interface internals are not
// descended into: the diagnostic belongs on the field of the type that
// directly embeds the community.
func pinnedIn(t types.Type, seen map[types.Type]bool) string {
	if seen[t] {
		return ""
	}
	seen[t] = true
	switch u := t.(type) {
	case *types.Named:
		if name := qualified(u); name != "" {
			return name
		}
		return pinnedIn(u.Underlying(), seen)
	case *types.Alias:
		return pinnedIn(types.Unalias(u), seen)
	case *types.Pointer:
		return pinnedIn(u.Elem(), seen)
	case *types.Slice:
		return pinnedIn(u.Elem(), seen)
	case *types.Array:
		return pinnedIn(u.Elem(), seen)
	case *types.Chan:
		return pinnedIn(u.Elem(), seen)
	case *types.Map:
		if name := pinnedIn(u.Key(), seen); name != "" {
			return name
		}
		return pinnedIn(u.Elem(), seen)
	}
	return ""
}

// qualified returns "pkg/path.Name" when the named type is in the
// configured pinned list, else "".
func qualified(n *types.Named) string {
	obj := n.Obj()
	if obj == nil || obj.Pkg() == nil {
		return ""
	}
	full := obj.Pkg().Path() + "." + obj.Name()
	for _, want := range strings.Split(pinned, ",") {
		if strings.TrimSpace(want) == full {
			return full
		}
	}
	return ""
}
