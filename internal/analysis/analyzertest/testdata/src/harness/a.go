// Package harness is the multi-file half of the harness self-test:
// diagnostics land in both files, and the receiver type comes from the
// imported harnessdep package.
package harness

import "harnessdep"

// A lights a locally built fuse.
func A() {
	f := harnessdep.New()
	f.Light() // want `Light called on \*harnessdep\.Fuse`
	f.Snuff()
}
