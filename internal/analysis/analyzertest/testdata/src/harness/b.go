package harness

import "harnessdep"

// B exercises the suppression contract from a second file of the same
// package.
func B(f *harnessdep.Fuse) {
	f.Light() // want `Light called on \*harnessdep\.Fuse`
	f.Light() //nolint:marktest -- harness self-test: a justified suppression is honored
	// No "-- reason" clause: the suppression is inert and the
	// diagnostic must keep firing.
	//nolint:marktest
	f.Light() // want `Light called on \*harnessdep\.Fuse`
}
