// Package harnessdep is the dependency half of the harness self-test
// fixture: the analyzer under test resolves its types across the
// package boundary.
package harnessdep

// Fuse is the type the self-test analyzer keys on.
type Fuse struct{}

// New builds a Fuse.
func New() *Fuse { return &Fuse{} }

// Light is the method whose calls the self-test analyzer reports.
func (f *Fuse) Light() {}

// Snuff is a decoy method that must not be reported.
func (f *Fuse) Snuff() {}
