package analyzertest_test

import (
	"go/ast"
	"testing"

	"golang.org/x/tools/go/analysis"
	"swrec/internal/analysis/analyzertest"
	"swrec/internal/analysis/lintutil"
)

// lightAnalyzer is a throwaway analyzer for testing the harness
// itself: it reports every call of (*harnessdep.Fuse).Light, which
// forces type resolution across the fixture package boundary — a
// string match on the method name alone could not tell a Fuse from a
// decoy.
var lightAnalyzer = &analysis.Analyzer{
	Name: "marktest",
	Doc:  "reports Fuse.Light calls (analyzertest self-test)",
	Run: func(pass *analysis.Pass) (any, error) {
		sup := lintutil.New(pass, "marktest")
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				sel, ok := call.Fun.(*ast.SelectorExpr)
				if !ok || sel.Sel.Name != "Light" {
					return true
				}
				tv, ok := pass.TypesInfo.Types[sel.X]
				if !ok {
					return true
				}
				if tv.Type.String() == "*harnessdep.Fuse" {
					sup.Report(call.Pos(), "Light called on "+tv.Type.String())
				}
				return true
			})
		}
		return nil, nil
	},
}

// TestMultiFileMultiPackage proves the harness loads every file of a
// fixture package (diagnostics land in both a.go and b.go), resolves
// imports against testdata/src (the receiver type lives in
// harnessdep), honors justified suppressions, and keeps unjustified
// suppressions inert — b.go pins a diagnostic that still fires under
// a reason-less //nolint.
func TestMultiFileMultiPackage(t *testing.T) {
	analyzertest.Run(t, lightAnalyzer, "harness")
}
