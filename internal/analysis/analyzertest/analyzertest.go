// Package analyzertest is a hermetic, dependency-free reimplementation
// of the golang.org/x/tools analysistest harness. The real harness
// sits on go/packages, which the toolchain does not vendor for vet;
// this one loads fixtures with go/parser + go/types and a testdata-only
// importer, so analyzer tests run offline with no module downloads.
//
// Layout mirrors analysistest: Run(t, a, "pkgname") type-checks every
// .go file under testdata/src/pkgname (relative to the test's working
// directory), runs a's Requires closure and then a itself, and matches
// each diagnostic against `// want "regexp"` (or backquoted)
// annotations on the same line. Unmatched diagnostics and unmatched
// want annotations both fail the test.
//
// Imports inside fixtures resolve exclusively against testdata/src:
// fixtures ship small stubs for the stdlib slices they touch (context,
// sync, time, math/rand, fmt, expvar, swrec/internal/model, ...).
// Type identity in go/types is path-based, so a stub `package model`
// under testdata/src/swrec/internal/model is indistinguishable from
// the real one as far as the analyzers are concerned — and keeps the
// fixtures fast and self-contained.
package analyzertest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	"golang.org/x/tools/go/analysis"
)

// Run loads testdata/src/<pkgpath>, applies a (and its Requires
// closure), and asserts the diagnostics match the fixture's // want
// annotations.
func Run(t *testing.T, a *analysis.Analyzer, pkgpath string) {
	t.Helper()
	root, err := filepath.Abs(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatalf("analyzertest: %v", err)
	}
	ld := &loader{
		root: root,
		fset: token.NewFileSet(),
		pkgs: make(map[string]*loaded),
	}
	lp, err := ld.load(pkgpath)
	if err != nil {
		t.Fatalf("analyzertest: loading %s: %v", pkgpath, err)
	}

	var diags []analysis.Diagnostic
	if err := runWithDeps(a, lp, ld.fset, &diags, make(map[*analysis.Analyzer]any)); err != nil {
		t.Fatalf("analyzertest: running %s: %v", a.Name, err)
	}
	check(t, a, ld.fset, lp.files, diags)
}

type loaded struct {
	pkg   *types.Package
	files []*ast.File
	info  *types.Info
}

// loader resolves import paths strictly under testdata/src, with a
// source-importer fallback for any stdlib package a fixture does not
// stub.
type loader struct {
	root string
	fset *token.FileSet
	pkgs map[string]*loaded
	std  types.Importer
}

func (l *loader) Import(path string) (*types.Package, error) {
	lp, err := l.load(path)
	if err != nil {
		return nil, err
	}
	return lp.pkg, nil
}

func (l *loader) load(path string) (*loaded, error) {
	if lp, ok := l.pkgs[path]; ok {
		return lp, nil
	}
	dir := filepath.Join(l.root, filepath.FromSlash(path))
	if st, err := os.Stat(dir); err != nil || !st.IsDir() {
		// Not stubbed: fall back to type-checking the real stdlib
		// package from GOROOT source (offline, no modules).
		if l.std == nil {
			l.std = importer.ForCompiler(l.fset, "source", nil)
		}
		pkg, err := l.std.Import(path)
		if err != nil {
			return nil, fmt.Errorf("import %q: not under testdata/src and not importable from GOROOT: %v", path, err)
		}
		lp := &loaded{pkg: pkg}
		l.pkgs[path] = lp
		return lp, nil
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no .go files under %s", dir)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
	conf := types.Config{Importer: l}
	pkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, err
	}
	lp := &loaded{pkg: pkg, files: files, info: info}
	l.pkgs[path] = lp
	return lp, nil
}

// runWithDeps executes a's Requires closure depth-first, then a,
// sharing one results map; diagnostics from a itself land in diags.
func runWithDeps(a *analysis.Analyzer, lp *loaded, fset *token.FileSet, diags *[]analysis.Diagnostic, results map[*analysis.Analyzer]any) error {
	if _, done := results[a]; done {
		return nil
	}
	for _, dep := range a.Requires {
		if err := runWithDeps(dep, lp, fset, diags, results); err != nil {
			return err
		}
	}
	pass := &analysis.Pass{
		Analyzer:   a,
		Fset:       fset,
		Files:      lp.files,
		Pkg:        lp.pkg,
		TypesInfo:  lp.info,
		TypesSizes: types.SizesFor("gc", "amd64"),
		ResultOf:   results,
		Report: func(d analysis.Diagnostic) {
			*diags = append(*diags, d)
		},
		ImportObjectFact:  func(types.Object, analysis.Fact) bool { return false },
		ExportObjectFact:  func(types.Object, analysis.Fact) {},
		ImportPackageFact: func(*types.Package, analysis.Fact) bool { return false },
		ExportPackageFact: func(analysis.Fact) {},
		AllObjectFacts:    func() []analysis.ObjectFact { return nil },
		AllPackageFacts:   func() []analysis.PackageFact { return nil },
		ReadFile:          os.ReadFile,
	}
	res, err := a.Run(pass)
	if err != nil {
		return fmt.Errorf("%s: %v", a.Name, err)
	}
	results[a] = res
	return nil
}

var wantRe = regexp.MustCompile("//\\s*want\\s+(?:\"((?:[^\"\\\\]|\\\\.)*)\"|`([^`]*)`)")

type wantAnn struct {
	file    string
	line    int
	re      *regexp.Regexp
	raw     string
	matched bool
}

// check compares diagnostics against the fixtures' want annotations.
func check(t *testing.T, a *analysis.Analyzer, fset *token.FileSet, files []*ast.File, diags []analysis.Diagnostic) {
	t.Helper()
	var wants []*wantAnn
	for _, f := range files {
		filename := fset.Position(f.Package).Filename
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pat := m[1]
				if pat == "" {
					pat = m[2]
				} else {
					pat = strings.ReplaceAll(pat, `\"`, `"`)
				}
				re, err := regexp.Compile(pat)
				if err != nil {
					t.Fatalf("%s: bad want pattern %q: %v", filename, pat, err)
				}
				wants = append(wants, &wantAnn{
					file: filename,
					line: fset.Position(c.Pos()).Line,
					re:   re,
					raw:  pat,
				})
			}
		}
	}
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		var hit *wantAnn
		for _, w := range wants {
			if !w.matched && w.file == pos.Filename && w.line == pos.Line && w.re.MatchString(d.Message) {
				hit = w
				break
			}
		}
		if hit == nil {
			t.Errorf("%s: unexpected diagnostic from %s: %s", pos, a.Name, d.Message)
			continue
		}
		hit.matched = true
	}
	sort.Slice(wants, func(i, j int) bool {
		if wants[i].file != wants[j].file {
			return wants[i].file < wants[j].file
		}
		return wants[i].line < wants[j].line
	})
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no diagnostic matched want %q", w.file, w.line, w.raw)
		}
	}
}
