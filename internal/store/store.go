// Package store implements the crawler's local document cache: an
// embedded, append-only log-structured key-value store in the bitcask
// tradition — every Put appends one CRC-protected record to a single data
// file and updates an in-memory hash index mapping key → file offset.
//
// The paper's architecture makes every agent materialize remote Semantic
// Web documents locally before "all recommendation computations [are
// performed] locally for one given user" (§2); this store is that
// materialization layer. "Tailored crawlers search the Web for weblogs and
// ensure data freshness" (§4.1) by overwriting records, so the log
// accumulates dead versions; Compact rewrites the live set and atomically
// swaps the file.
//
// Durability and failure model: records are only trusted if their CRC32
// checks out; on Open, a torn tail (partial final record, e.g. after a
// crash) is detected and truncated away, recovering every record before
// it.
package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sort"
	"sync"
)

var (
	// ErrClosed is returned by operations on a closed store.
	ErrClosed = errors.New("store: closed")
	// ErrCorrupt is returned when a record fails its CRC or length checks
	// in the middle of the log (a torn *tail* is repaired silently).
	ErrCorrupt = errors.New("store: corrupt record")
	// ErrKeyTooLarge is returned for keys above 64 KiB.
	ErrKeyTooLarge = errors.New("store: key too large")
)

const (
	maxKeyLen   = 64 << 10
	maxValueLen = 64 << 20

	flagTombstone = 1

	// record header: crc32(4) + flags(1) + uvarint keyLen + uvarint valLen
	headerFixed = 5
)

// File is the handle the store reads and appends through. *os.File
// satisfies it; the indirection exists so tests can interpose
// fault-injecting wrappers (internal/faultinject) on the I/O path.
type File interface {
	io.ReaderAt
	io.WriterAt
	io.Seeker
	Truncate(size int64) error
	Sync() error
	Stat() (os.FileInfo, error)
	Close() error
}

// Options configure a Store.
type Options struct {
	// SyncEveryPut fsyncs after every append. Slow but safest; off by
	// default (the crawler can always re-fetch).
	SyncEveryPut bool
	// WrapFile, when set, wraps the data file (and Compact's temp file) as
	// it is opened — the fault-injection seam. Nil uses the raw *os.File.
	WrapFile func(*os.File) File
}

// wrap applies the WrapFile seam to a freshly opened data file.
func (o Options) wrap(f *os.File) File {
	if o.WrapFile != nil {
		return o.WrapFile(f)
	}
	return f
}

// indexEntry locates the current version of one key in the data file.
type indexEntry struct {
	offset int64
	size   int64 // full record size in bytes
}

// Store is a single-file append-only document store. All methods are safe
// for concurrent use.
type Store struct {
	mu     sync.RWMutex
	path   string
	f      File
	opt    Options
	index  map[string]indexEntry
	offset int64 // append position
	dead   int64 // bytes belonging to overwritten/deleted records
	closed bool
}

// Open opens (creating if necessary) the store at path and rebuilds the
// index by scanning the log. A torn final record is truncated away, and
// a temp file orphaned by a crash mid-Compact is removed: it was never
// renamed into place, so the main log is still the authoritative copy.
func Open(path string, opt Options) (*Store, error) {
	if err := os.Remove(path + ".compact"); err != nil && !os.IsNotExist(err) {
		return nil, fmt.Errorf("store: remove orphaned compact temp: %w", err)
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: open %s: %w", path, err)
	}
	s := &Store{path: path, f: opt.wrap(f), opt: opt, index: make(map[string]indexEntry)}
	if err := s.rebuild(); err != nil {
		return nil, errors.Join(err, f.Close())
	}
	return s, nil
}

// rebuild scans the log, populating the index, and truncates a torn tail.
func (s *Store) rebuild() error {
	info, err := s.f.Stat()
	if err != nil {
		return fmt.Errorf("store: stat: %w", err)
	}
	size := info.Size()
	var off int64
	r := io.NewSectionReader(s.f, 0, size)
	for off < size {
		key, _, recLen, flags, err := readRecord(r, off, size)
		if err != nil {
			if errors.Is(err, errTorn) {
				// Crash mid-append: drop the tail, keep everything before.
				if terr := s.f.Truncate(off); terr != nil {
					return fmt.Errorf("store: truncate torn tail: %w", terr)
				}
				break
			}
			return err
		}
		if prev, ok := s.index[key]; ok {
			s.dead += prev.size
		}
		if flags&flagTombstone != 0 {
			delete(s.index, key)
			s.dead += recLen
		} else {
			s.index[key] = indexEntry{offset: off, size: recLen}
		}
		off += recLen
	}
	s.offset = off
	if _, err := s.f.Seek(off, io.SeekStart); err != nil {
		return fmt.Errorf("store: seek: %w", err)
	}
	return nil
}

// errTorn marks an incomplete record at the end of the log.
var errTorn = errors.New("store: torn record")

// readRecord reads and validates the record at off. It returns errTorn if
// the file ends before the record does, and ErrCorrupt on checksum or
// bound violations.
func readRecord(r io.ReaderAt, off, size int64) (key string, value []byte, recLen int64, flags byte, err error) {
	var hdr [headerFixed + 2*binary.MaxVarintLen32]byte
	n, rerr := r.ReadAt(hdr[:], off)
	if rerr != nil && rerr != io.EOF {
		return "", nil, 0, 0, fmt.Errorf("store: read header: %w", rerr)
	}
	if n < headerFixed+2 {
		return "", nil, 0, 0, errTorn
	}
	buf := hdr[:n]
	crc := binary.LittleEndian.Uint32(buf[0:4])
	flags = buf[4]
	p := 5
	keyLen, k1 := binary.Uvarint(buf[p:])
	if k1 <= 0 {
		return "", nil, 0, 0, errTorn
	}
	p += k1
	valLen, k2 := binary.Uvarint(buf[p:])
	if k2 <= 0 {
		return "", nil, 0, 0, errTorn
	}
	p += k2
	if keyLen > maxKeyLen || valLen > maxValueLen {
		return "", nil, 0, 0, fmt.Errorf("%w: absurd lengths key=%d val=%d at offset %d",
			ErrCorrupt, keyLen, valLen, off)
	}
	recLen = int64(p) + int64(keyLen) + int64(valLen)
	if off+recLen > size {
		return "", nil, 0, 0, errTorn
	}
	payload := make([]byte, 1+k1+k2+int(keyLen)+int(valLen))
	if _, err := r.ReadAt(payload[1+k1+k2:], off+int64(p)); err != nil {
		return "", nil, 0, 0, fmt.Errorf("store: read payload: %w", err)
	}
	copy(payload[:1+k1+k2], buf[4:p])
	if crc32.ChecksumIEEE(payload) != crc {
		return "", nil, 0, 0, fmt.Errorf("%w: checksum mismatch at offset %d", ErrCorrupt, off)
	}
	body := payload[1+k1+k2:]
	return string(body[:keyLen]), body[keyLen:], recLen, flags, nil
}

// appendRecord writes one record at the current tail. Caller holds s.mu.
func (s *Store) appendRecord(key string, value []byte, flags byte) (recLen int64, err error) {
	var lens [2 * binary.MaxVarintLen32]byte
	p := binary.PutUvarint(lens[:], uint64(len(key)))
	p += binary.PutUvarint(lens[p:], uint64(len(value)))

	rec := make([]byte, 0, headerFixed+p+len(key)+len(value)) //nolint:boundedmake -- encode path: p is PutUvarint's output length, ≤ 2*MaxVarintLen32 by construction, not decoded input
	rec = append(rec, 0, 0, 0, 0)                             // crc placeholder
	rec = append(rec, flags)
	rec = append(rec, lens[:p]...)
	rec = append(rec, key...)
	rec = append(rec, value...)
	binary.LittleEndian.PutUint32(rec[0:4], crc32.ChecksumIEEE(rec[4:]))

	if _, err := s.f.WriteAt(rec, s.offset); err != nil {
		return 0, fmt.Errorf("store: append: %w", err)
	}
	if s.opt.SyncEveryPut {
		if err := s.f.Sync(); err != nil {
			return 0, fmt.Errorf("store: sync: %w", err)
		}
	}
	return int64(len(rec)), nil
}

// Put stores value under key, replacing any previous version.
func (s *Store) Put(key string, value []byte) error {
	if len(key) > maxKeyLen {
		return ErrKeyTooLarge
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	recLen, err := s.appendRecord(key, value, 0)
	if err != nil {
		return err
	}
	if prev, ok := s.index[key]; ok {
		s.dead += prev.size
	}
	s.index[key] = indexEntry{offset: s.offset, size: recLen}
	s.offset += recLen
	return nil
}

// Get returns the current value of key; ok is false if absent or deleted.
func (s *Store) Get(key string) (value []byte, ok bool, err error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return nil, false, ErrClosed
	}
	e, found := s.index[key]
	if !found {
		return nil, false, nil
	}
	_, v, _, flags, err := readRecord(s.f, e.offset, e.offset+e.size)
	if err != nil {
		return nil, false, err
	}
	if flags&flagTombstone != 0 {
		return nil, false, nil
	}
	return v, true, nil
}

// Delete removes key by appending a tombstone. Deleting an absent key is
// a no-op.
func (s *Store) Delete(key string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	e, found := s.index[key]
	if !found {
		return nil
	}
	recLen, err := s.appendRecord(key, nil, flagTombstone)
	if err != nil {
		return err
	}
	s.dead += e.size + recLen
	delete(s.index, key)
	s.offset += recLen
	return nil
}

// Has reports whether key currently has a live value.
func (s *Store) Has(key string) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	_, ok := s.index[key]
	return ok && !s.closed
}

// Len returns the number of live keys.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.index)
}

// Keys returns all live keys, sorted.
func (s *Store) Keys() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.index))
	for k := range s.index {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Stats describes the store's physical state.
type Stats struct {
	LiveKeys  int
	FileBytes int64
	DeadBytes int64 // bytes reclaimable by Compact
}

// Stats returns current statistics.
func (s *Store) Stats() Stats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return Stats{LiveKeys: len(s.index), FileBytes: s.offset, DeadBytes: s.dead}
}

// Compact rewrites only the live records into a fresh file and atomically
// replaces the log. Concurrent readers are blocked for the duration.
func (s *Store) Compact() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	tmpPath := s.path + ".compact"
	raw, err := os.OpenFile(tmpPath, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("store: compact: %w", err)
	}
	tmp := s.opt.wrap(raw)
	defer os.Remove(tmpPath) // no-op after successful rename

	// Deterministic order keeps compacted files byte-identical for
	// identical logical content.
	keys := make([]string, 0, len(s.index))
	for k := range s.index {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	newIndex := make(map[string]indexEntry, len(keys))
	next := &Store{f: tmp, index: newIndex}
	for _, k := range keys {
		e := s.index[k]
		_, v, _, _, err := readRecord(s.f, e.offset, e.offset+e.size)
		if err != nil {
			return fmt.Errorf("store: compact read %q: %w", k, errors.Join(err, tmp.Close()))
		}
		recLen, err := next.appendRecord(k, v, 0)
		if err != nil {
			return errors.Join(err, tmp.Close())
		}
		newIndex[k] = indexEntry{offset: next.offset, size: recLen}
		next.offset += recLen
	}
	if err := tmp.Sync(); err != nil {
		return fmt.Errorf("store: compact sync: %w", errors.Join(err, tmp.Close()))
	}
	if err := os.Rename(tmpPath, s.path); err != nil {
		return fmt.Errorf("store: compact rename: %w", errors.Join(err, tmp.Close()))
	}
	old := s.f
	s.f = tmp
	s.index = newIndex
	s.offset = next.offset
	s.dead = 0
	if err := old.Close(); err != nil {
		return fmt.Errorf("store: compact close pre-compact file: %w", err)
	}
	return nil
}

// Close releases the store. Further operations return ErrClosed.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	if err := s.f.Sync(); err != nil {
		return fmt.Errorf("store: close sync: %w", errors.Join(err, s.f.Close()))
	}
	return s.f.Close()
}
