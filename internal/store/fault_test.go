package store

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"swrec/internal/faultinject"
)

// TestPutFaultsDoNotCorruptAckedRecords drives Puts through the
// fault-injection seam: failed writes (outright and torn) must leave
// every previously acknowledged record readable, both in-process and
// after a clean reopen that repairs the torn tail.
func TestPutFaultsDoNotCorruptAckedRecords(t *testing.T) {
	path := filepath.Join(t.TempDir(), "docs.db")
	inj := faultinject.New(faultinject.Config{
		Seed: 77, WriteErrorRate: 0.1, TornWriteRate: 0.1,
	})
	s, err := Open(path, Options{WrapFile: func(f *os.File) File { return inj.File(f) }})
	if err != nil {
		t.Fatal(err)
	}

	// Several overwrite rounds: the acked state is whatever the last
	// successful Put for each key wrote.
	expected := map[string][]byte{}
	var faults int
	for round := 0; round < 4; round++ {
		for i := 0; i < 50; i++ {
			key := fmt.Sprintf("doc-%d", i)
			val := []byte(fmt.Sprintf("round %d content of %s", round, key))
			if err := s.Put(key, val); err != nil {
				if !errors.Is(err, faultinject.ErrInjected) {
					t.Fatalf("unexpected non-injected error: %v", err)
				}
				faults++
				continue
			}
			expected[key] = val
		}
	}
	if faults == 0 {
		t.Fatal("no faults fired; pick another seed")
	}

	verify := func(st *Store, label string) {
		t.Helper()
		if st.Len() != len(expected) {
			t.Fatalf("%s: %d live keys, want %d", label, st.Len(), len(expected))
		}
		for key, want := range expected {
			got, ok, err := st.Get(key)
			if err != nil || !ok {
				t.Fatalf("%s: Get(%s) = %v,%v", label, key, ok, err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("%s: Get(%s) = %q, want %q", label, key, got, want)
			}
		}
	}
	verify(s, "in-process")
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Clean reopen: the log must rebuild to exactly the acked state.
	s2, err := Open(path, Options{})
	if err != nil {
		t.Fatalf("reopen after faults: %v", err)
	}
	defer s2.Close()
	verify(s2, "reopened")

	// And the rebuilt store is fully usable, including compaction.
	if err := s2.Compact(); err != nil {
		t.Fatal(err)
	}
	verify(s2, "compacted")
}
