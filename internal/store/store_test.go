package store

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"testing/quick"
)

func open(t *testing.T) (*Store, string) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "docs.log")
	s, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s, path
}

func TestPutGetDelete(t *testing.T) {
	s, _ := open(t)
	if err := s.Put("alice", []byte("homepage-v1")); err != nil {
		t.Fatal(err)
	}
	v, ok, err := s.Get("alice")
	if err != nil || !ok || string(v) != "homepage-v1" {
		t.Fatalf("Get = %q,%v,%v", v, ok, err)
	}
	if _, ok, _ := s.Get("bob"); ok {
		t.Fatal("phantom key")
	}
	if err := s.Delete("alice"); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := s.Get("alice"); ok {
		t.Fatal("deleted key still readable")
	}
	if err := s.Delete("never-existed"); err != nil {
		t.Fatal("deleting absent key must be a no-op")
	}
	if s.Len() != 0 {
		t.Fatalf("Len = %d, want 0", s.Len())
	}
}

func TestOverwriteKeepsLatest(t *testing.T) {
	s, _ := open(t)
	for i := 0; i < 10; i++ {
		if err := s.Put("k", []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	v, ok, err := s.Get("k")
	if err != nil || !ok || v[0] != 9 {
		t.Fatalf("Get = %v,%v,%v, want latest version", v, ok, err)
	}
	st := s.Stats()
	if st.DeadBytes == 0 {
		t.Fatal("overwrites must accumulate dead bytes")
	}
	if st.LiveKeys != 1 {
		t.Fatalf("LiveKeys = %d, want 1", st.LiveKeys)
	}
}

func TestPersistenceAcrossReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "docs.log")
	s, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]string{"a": "1", "b": "2", "c": "3"}
	for k, v := range want {
		if err := s.Put(k, []byte(v)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Put("b", []byte("2v2")); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete("c"); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got := s2.Keys(); len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("Keys after reopen = %v", got)
	}
	v, ok, err := s2.Get("b")
	if err != nil || !ok || string(v) != "2v2" {
		t.Fatalf("Get(b) = %q,%v,%v", v, ok, err)
	}
	if _, ok, _ := s2.Get("c"); ok {
		t.Fatal("tombstone not honored after reopen")
	}
}

func TestTornTailRecovered(t *testing.T) {
	path := filepath.Join(t.TempDir(), "docs.log")
	s, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("good", []byte("value")); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("casualty", []byte("this will be torn")); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash mid-append: chop off the last few bytes.
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, info.Size()-5); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(path, Options{})
	if err != nil {
		t.Fatalf("torn tail must be repaired, got %v", err)
	}
	defer s2.Close()
	if _, ok, _ := s2.Get("casualty"); ok {
		t.Fatal("torn record must be dropped")
	}
	v, ok, err := s2.Get("good")
	if err != nil || !ok || string(v) != "value" {
		t.Fatalf("record before the tear lost: %q,%v,%v", v, ok, err)
	}
	// The store must be appendable again after repair.
	if err := s2.Put("after", []byte("repair")); err != nil {
		t.Fatal(err)
	}
	if v, ok, _ := s2.Get("after"); !ok || string(v) != "repair" {
		t.Fatal("append after repair broken")
	}
}

func TestCorruptMiddleDetected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "docs.log")
	s, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("k1", bytes.Repeat([]byte("x"), 100)); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("k2", []byte("second")); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Flip a byte inside the first record's value.
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte{'y'}, 20); err != nil {
		t.Fatal(err)
	}
	f.Close()

	if _, err := Open(path, Options{}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Open over corrupt middle = %v, want ErrCorrupt", err)
	}
}

func TestCompact(t *testing.T) {
	s, path := open(t)
	for i := 0; i < 50; i++ {
		if err := s.Put("key", bytes.Repeat([]byte{byte(i)}, 64)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Put("other", []byte("keep me")); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete("key"); err != nil {
		t.Fatal(err)
	}
	before := s.Stats()
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	after := s.Stats()
	if after.FileBytes >= before.FileBytes {
		t.Fatalf("compact did not shrink: %d -> %d", before.FileBytes, after.FileBytes)
	}
	if after.DeadBytes != 0 {
		t.Fatalf("DeadBytes after compact = %d", after.DeadBytes)
	}
	v, ok, err := s.Get("other")
	if err != nil || !ok || string(v) != "keep me" {
		t.Fatalf("live data lost in compact: %q,%v,%v", v, ok, err)
	}
	// Store still writable and reopenable after compaction.
	if err := s.Put("post", []byte("compact")); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if v, ok, _ := s2.Get("post"); !ok || string(v) != "compact" {
		t.Fatal("post-compact write lost after reopen")
	}
}

func TestClosedOperations(t *testing.T) {
	s, _ := open(t)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal("double close must be a no-op")
	}
	if err := s.Put("k", nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("Put on closed = %v", err)
	}
	if _, _, err := s.Get("k"); !errors.Is(err, ErrClosed) {
		t.Fatalf("Get on closed = %v", err)
	}
	if err := s.Delete("k"); !errors.Is(err, ErrClosed) {
		t.Fatalf("Delete on closed = %v", err)
	}
	if err := s.Compact(); !errors.Is(err, ErrClosed) {
		t.Fatalf("Compact on closed = %v", err)
	}
}

func TestKeyTooLarge(t *testing.T) {
	s, _ := open(t)
	big := string(bytes.Repeat([]byte("k"), maxKeyLen+1))
	if err := s.Put(big, nil); !errors.Is(err, ErrKeyTooLarge) {
		t.Fatalf("got %v, want ErrKeyTooLarge", err)
	}
}

func TestEmptyKeyAndValue(t *testing.T) {
	s, _ := open(t)
	if err := s.Put("", nil); err != nil {
		t.Fatal(err)
	}
	v, ok, err := s.Get("")
	if err != nil || !ok || len(v) != 0 {
		t.Fatalf("empty key/value = %v,%v,%v", v, ok, err)
	}
}

func TestSyncEveryPut(t *testing.T) {
	path := filepath.Join(t.TempDir(), "docs.log")
	s, err := Open(path, Options{SyncEveryPut: true})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Put("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	if v, ok, _ := s.Get("k"); !ok || string(v) != "v" {
		t.Fatal("synced put unreadable")
	}
}

func TestConcurrentAccess(t *testing.T) {
	s, _ := open(t)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				key := fmt.Sprintf("w%d-k%d", w, i%10)
				if err := s.Put(key, []byte(key)); err != nil {
					t.Error(err)
					return
				}
				if v, ok, err := s.Get(key); err != nil || !ok || string(v) != key {
					t.Errorf("Get(%s) = %q,%v,%v", key, v, ok, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if s.Len() != 80 {
		t.Fatalf("Len = %d, want 80", s.Len())
	}
}

// TestCompactCrashRecovery simulates a crash in the middle of Compact:
// the partially written temp file is left behind, never renamed into
// place. Open must discard the orphan and serve the original log intact.
func TestCompactCrashRecovery(t *testing.T) {
	s, path := open(t)
	for i := 0; i < 20; i++ {
		if err := s.Put(fmt.Sprintf("key-%d", i), bytes.Repeat([]byte{byte(i)}, 32)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Fabricate the mid-compaction state: a torn temp file holding a
	// prefix of the real log plus trailing garbage.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	torn := append(append([]byte{}, data[:len(data)/3]...), "garbage tail"...)
	tmpPath := path + ".compact"
	if err := os.WriteFile(tmpPath, torn, 0o644); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(path, Options{})
	if err != nil {
		t.Fatalf("Open after crashed compact: %v", err)
	}
	defer s2.Close()
	if _, err := os.Stat(tmpPath); !os.IsNotExist(err) {
		t.Fatalf("orphaned %s not removed (stat err = %v)", tmpPath, err)
	}
	// Every record from the authoritative log survived.
	for i := 0; i < 20; i++ {
		v, ok, err := s2.Get(fmt.Sprintf("key-%d", i))
		if err != nil || !ok || !bytes.Equal(v, bytes.Repeat([]byte{byte(i)}, 32)) {
			t.Fatalf("key-%d = %q,%v,%v after recovery", i, v, ok, err)
		}
	}
	// And the recovered store compacts cleanly afterwards.
	if err := s2.Delete("key-0"); err != nil {
		t.Fatal(err)
	}
	if err := s2.Compact(); err != nil {
		t.Fatalf("compact after recovery: %v", err)
	}
	if _, ok, _ := s2.Get("key-1"); !ok {
		t.Fatal("live key lost in post-recovery compact")
	}
}

func TestOpenErrors(t *testing.T) {
	// Path inside a nonexistent directory.
	if _, err := Open(filepath.Join(t.TempDir(), "no", "such", "dir", "x.log"), Options{}); err == nil {
		t.Fatal("nonexistent directory accepted")
	}
	// Path that is a directory.
	dir := t.TempDir()
	if _, err := Open(dir, Options{}); err == nil {
		t.Fatal("directory path accepted")
	}
}

func TestTinyTornFile(t *testing.T) {
	// A file holding fewer bytes than any record header is all torn tail:
	// it must open empty and be writable.
	path := filepath.Join(t.TempDir(), "tiny.log")
	if err := os.WriteFile(path, []byte{0x01, 0x02, 0x03}, 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := Open(path, Options{})
	if err != nil {
		t.Fatalf("tiny torn file: %v", err)
	}
	defer s.Close()
	if s.Len() != 0 {
		t.Fatalf("Len = %d, want 0", s.Len())
	}
	if err := s.Put("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	if v, ok, _ := s.Get("k"); !ok || string(v) != "v" {
		t.Fatal("write after tiny-tail repair broken")
	}
}

func TestLargeValueRoundTrip(t *testing.T) {
	s, _ := open(t)
	big := bytes.Repeat([]byte("x"), 1<<20)
	if err := s.Put("big", big); err != nil {
		t.Fatal(err)
	}
	v, ok, err := s.Get("big")
	if err != nil || !ok || !bytes.Equal(v, big) {
		t.Fatalf("1MiB round trip failed: %v %v len=%d", ok, err, len(v))
	}
}

func TestKeysSorted(t *testing.T) {
	s, _ := open(t)
	for _, k := range []string{"zeta", "alpha", "mid"} {
		if err := s.Put(k, nil); err != nil {
			t.Fatal(err)
		}
	}
	keys := s.Keys()
	if len(keys) != 3 || keys[0] != "alpha" || keys[1] != "mid" || keys[2] != "zeta" {
		t.Fatalf("Keys = %v", keys)
	}
	if !s.Has("mid") || s.Has("nope") {
		t.Fatal("Has broken")
	}
}

// Property: a random sequence of puts/deletes matches a map model, both
// live and after reopen.
func TestModelEquivalenceProperty(t *testing.T) {
	f := func(seed int64) bool {
		dir, err := os.MkdirTemp("", "storeprop")
		if err != nil {
			return false
		}
		defer os.RemoveAll(dir)
		path := filepath.Join(dir, "docs.log")
		s, err := Open(path, Options{})
		if err != nil {
			return false
		}
		rng := rand.New(rand.NewSource(seed))
		modelMap := map[string]string{}
		keys := []string{"a", "b", "c", "d", "e"}
		for i := 0; i < 120; i++ {
			k := keys[rng.Intn(len(keys))]
			switch rng.Intn(3) {
			case 0, 1:
				v := fmt.Sprintf("v%d", rng.Intn(1000))
				if err := s.Put(k, []byte(v)); err != nil {
					return false
				}
				modelMap[k] = v
			case 2:
				if err := s.Delete(k); err != nil {
					return false
				}
				delete(modelMap, k)
			}
		}
		check := func(st *Store) bool {
			if st.Len() != len(modelMap) {
				return false
			}
			for k, want := range modelMap {
				v, ok, err := st.Get(k)
				if err != nil || !ok || string(v) != want {
					return false
				}
			}
			return true
		}
		if !check(s) {
			return false
		}
		if rng.Intn(2) == 0 {
			if err := s.Compact(); err != nil {
				return false
			}
			if !check(s) {
				return false
			}
		}
		if err := s.Close(); err != nil {
			return false
		}
		s2, err := Open(path, Options{})
		if err != nil {
			return false
		}
		defer s2.Close()
		return check(s2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
