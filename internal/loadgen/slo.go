package loadgen

import "fmt"

// Budget is the SLO for one endpoint series. Latency bounds are
// milliseconds; zero disables that bound.
type Budget struct {
	P50MS  float64 `json:"p50ms,omitempty"`
	P99MS  float64 `json:"p99ms,omitempty"`
	P999MS float64 `json:"p999ms,omitempty"`
	// MaxErrorRate bounds the fraction of responses whose status is
	// neither a success nor in Expected.
	MaxErrorRate float64 `json:"maxErrorRate,omitempty"`
	// Allowed is the status-set invariant: any response outside it is a
	// violation regardless of rate. Defaults depend on the endpoint
	// class (reads vs writes).
	Allowed []int `json:"allowed,omitempty"`
	// Expected lists non-2xx statuses that are part of normal operation
	// (404 for churned-away agents, 503 under declared overload) and so
	// do not count toward the error rate.
	Expected []int `json:"expected,omitempty"`
}

// SLO declares the budgets a run must meet. PerEndpoint entries
// override Default field-by-field only where set.
type SLO struct {
	Default     Budget            `json:"default"`
	PerEndpoint map[string]Budget `json:"perEndpoint,omitempty"`
}

// Violation is one SLO breach, flattened for the report.
type Violation struct {
	Endpoint string  `json:"endpoint"`
	Metric   string  `json:"metric"`
	Got      float64 `json:"got"`
	Limit    float64 `json:"limit"`
}

func (v Violation) String() string {
	return fmt.Sprintf("%s: %s %.3f exceeds %.3f", v.Endpoint, v.Metric, v.Got, v.Limit)
}

// Status-set defaults. Reads can 200, miss on churned agents (404), or
// time out against the ladder (504); writes ack (202), reject invalid
// or not-yet-visible subjects (400/404), or shed load (503).
var (
	readAllowed  = []int{200, 404, 504}
	writeAllowed = []int{202, 400, 404, 503}
)

func isWriteEndpoint(ep string) bool {
	switch ep {
	case EpWriteTrust, EpWriteRating, EpWriteJoin, EpWriteLeave:
		return true
	}
	return false
}

// normalize fills class-appropriate Allowed/Expected defaults so
// scenario files only state deviations.
func (s *SLO) normalize() {
	if s.PerEndpoint == nil {
		s.PerEndpoint = map[string]Budget{}
	}
}

// budgetFor merges the per-endpoint override onto the default.
func (s *SLO) budgetFor(ep string) Budget {
	b := s.Default
	if o, ok := s.PerEndpoint[ep]; ok {
		if o.P50MS > 0 {
			b.P50MS = o.P50MS
		}
		if o.P99MS > 0 {
			b.P99MS = o.P99MS
		}
		if o.P999MS > 0 {
			b.P999MS = o.P999MS
		}
		if o.MaxErrorRate > 0 {
			b.MaxErrorRate = o.MaxErrorRate
		}
		if len(o.Allowed) > 0 {
			b.Allowed = o.Allowed
		}
		if len(o.Expected) > 0 {
			b.Expected = o.Expected
		}
	}
	if len(b.Allowed) == 0 {
		if isWriteEndpoint(ep) {
			b.Allowed = writeAllowed
		} else {
			b.Allowed = readAllowed
		}
	}
	if len(b.Expected) == 0 {
		if isWriteEndpoint(ep) {
			b.Expected = []int{404, 503}
		} else {
			b.Expected = []int{404}
		}
	}
	return b
}

func statusIn(set []int, code int) bool {
	for _, s := range set {
		if s == code {
			return true
		}
	}
	return false
}

// Check evaluates every endpoint series in res against the SLO and
// returns all breaches (nil means full compliance).
func (s *SLO) Check(res *RunResult) []Violation {
	var out []Violation
	for _, ep := range sortedKeys(res.Endpoints) {
		st := res.Endpoints[ep]
		b := s.budgetFor(ep)
		ms := func(q float64) float64 { return float64(st.Hist.Quantile(q)) / 1e6 }
		if b.P50MS > 0 && ms(0.50) > b.P50MS {
			out = append(out, Violation{ep, "p50_ms", ms(0.50), b.P50MS})
		}
		if b.P99MS > 0 && ms(0.99) > b.P99MS {
			out = append(out, Violation{ep, "p99_ms", ms(0.99), b.P99MS})
		}
		if b.P999MS > 0 && ms(0.999) > b.P999MS {
			out = append(out, Violation{ep, "p999_ms", ms(0.999), b.P999MS})
		}

		var total, errs, outside uint64
		for code, n := range st.Statuses {
			total += n
			if !statusIn(b.Allowed, code) {
				outside += n
			}
			if code >= 400 && !statusIn(b.Expected, code) {
				errs += n
			}
		}
		// Transport-level failures count as both error and status-set
		// breach: a load generator that can't even get a status back is
		// seeing something worse than any HTTP error.
		total += st.TransportErrs
		errs += st.TransportErrs
		outside += st.TransportErrs
		if outside > 0 {
			out = append(out, Violation{ep, "status_outside_allowed", float64(outside), 0})
		}
		if total > 0 {
			rate := float64(errs) / float64(total)
			if rate > b.MaxErrorRate {
				out = append(out, Violation{ep, "error_rate", rate, b.MaxErrorRate})
			}
		}
	}
	return out
}
