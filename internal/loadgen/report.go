package loadgen

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"

	"swrec/internal/attack"
)

// LatencyReport is the human-readable latency block for one series.
type LatencyReport struct {
	Requests uint64  `json:"requests"`
	P50MS    float64 `json:"p50Ms"`
	P99MS    float64 `json:"p99Ms"`
	P999MS   float64 `json:"p999Ms"`
	MaxMS    float64 `json:"maxMs"`
	MeanMS   float64 `json:"meanMs"`
}

func latencyReport(h *Hist) LatencyReport {
	ms := func(q float64) float64 { return float64(h.Quantile(q)) / 1e6 }
	return LatencyReport{
		Requests: h.Count(),
		P50MS:    ms(0.50),
		P99MS:    ms(0.99),
		P999MS:   ms(0.999),
		MaxMS:    float64(h.Max()) / 1e6,
		MeanMS:   float64(h.Mean()) / 1e6,
	}
}

// EndpointReport is one endpoint's outcome.
type EndpointReport struct {
	LatencyReport
	Statuses      map[string]uint64 `json:"statuses"`
	TransportErrs uint64            `json:"transportErrors,omitempty"`
	ErrorRate     float64           `json:"errorRate"`
}

// AttackReport pairs one attack's confinement numbers with its bounds.
// The embedded Confinement is measured under the serving default
// (similarity-blended weighting) and is reported and drift-tracked; the
// paper's confinement claim is about trust-gated neighborhoods, so the
// Spec bounds are asserted against TrustGated (weighting pinned to
// alpha=1 via the API override). The gap between the two is itself a
// finding: cloned profiles buy similarity weight the trust metric
// denies them (see DESIGN.md §10).
type AttackReport struct {
	attack.Confinement
	TrustGated attack.Confinement `json:"trustGated"`
	Spec       attack.Spec        `json:"spec"`
	Violations []string           `json:"violations,omitempty"`
}

// Report is the BENCH_load.json artifact. Everything benchjson gates
// lives in the flat Metrics map; the structured blocks are for humans
// reading the file.
type Report struct {
	Kind            string  `json:"kind"` // "load"
	Scenario        string  `json:"scenario"`
	Seed            int64   `json:"seed"`
	PlanFingerprint string  `json:"planFingerprint"`
	Agents          int     `json:"agents"`
	Products        int     `json:"products"`
	Events          int     `json:"events"`
	Completed       int     `json:"completed"`
	Concurrency     int     `json:"concurrency"`
	Pacing          string  `json:"pacing"`
	WallSeconds     float64 `json:"wallSeconds"`

	Endpoints map[string]EndpointReport `json:"endpoints"`
	Rungs     map[string]LatencyReport  `json:"rungs"`
	Attacks   []AttackReport            `json:"attacks,omitempty"`

	Overloaded    uint64 `json:"overloaded,omitempty"`
	RetryAfterMin int    `json:"retryAfterMin,omitempty"`
	RetryAfterMax int    `json:"retryAfterMax,omitempty"`

	Violations []Violation `json:"sloViolations"`

	Metrics map[string]float64 `json:"metrics"`
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// BuildReport assembles the artifact from a run's measurements plus the
// attack confinement results.
func BuildReport(sc *Scenario, events []Event, res *RunResult, attacks []AttackReport) *Report {
	cfg := sc.DatagenConfig()
	rep := &Report{
		Kind:            "load",
		Scenario:        sc.Name,
		Seed:            sc.Seed,
		PlanFingerprint: Fingerprint(events),
		Agents:          cfg.Agents,
		Products:        cfg.Products,
		Events:          len(events),
		Completed:       res.Completed,
		Concurrency:     sc.Workload.Concurrency,
		Pacing:          sc.Workload.Pacing,
		WallSeconds:     res.Wall.Seconds(),
		Endpoints:       make(map[string]EndpointReport),
		Rungs:           make(map[string]LatencyReport),
		Attacks:         attacks,
		Overloaded:      res.Overloaded,
		RetryAfterMin:   res.RetryAfterMin,
		RetryAfterMax:   res.RetryAfterMax,
		Violations:      sc.SLO.Check(res),
		Metrics:         make(map[string]float64),
	}
	if rep.Violations == nil {
		rep.Violations = []Violation{}
	}

	var overall Hist
	var overallTotal, overallErrs uint64
	for _, ep := range sortedKeys(res.Endpoints) {
		st := res.Endpoints[ep]
		b := sc.SLO.budgetFor(ep)
		er := EndpointReport{
			LatencyReport: latencyReport(&st.Hist),
			Statuses:      make(map[string]uint64, len(st.Statuses)),
			TransportErrs: st.TransportErrs,
		}
		var total, errs uint64
		for code, n := range st.Statuses {
			er.Statuses[fmt.Sprintf("%d", code)] = n
			total += n
			if code >= 400 && !statusIn(b.Expected, code) {
				errs += n
			}
		}
		total += st.TransportErrs
		errs += st.TransportErrs
		if total > 0 {
			er.ErrorRate = float64(errs) / float64(total)
		}
		rep.Endpoints[ep] = er
		overall.Merge(&st.Hist)
		overallTotal += total
		overallErrs += errs

		rep.Metrics[ep+".p50_ms"] = er.P50MS
		rep.Metrics[ep+".p99_ms"] = er.P99MS
		rep.Metrics[ep+".p999_ms"] = er.P999MS
		rep.Metrics[ep+".error_rate"] = er.ErrorRate
	}
	ov := latencyReport(&overall)
	rep.Metrics["overall.p50_ms"] = ov.P50MS
	rep.Metrics["overall.p99_ms"] = ov.P99MS
	rep.Metrics["overall.p999_ms"] = ov.P999MS
	if overallTotal > 0 {
		rep.Metrics["overall.error_rate"] = float64(overallErrs) / float64(overallTotal)
	} else {
		rep.Metrics["overall.error_rate"] = 0
	}

	for rung, h := range res.Rungs {
		rep.Rungs[rung] = latencyReport(h)
		rep.Metrics["rung."+rung+".p99_ms"] = rep.Rungs[rung].P99MS
	}
	for _, ar := range attacks {
		pfx := "attack." + string(ar.Kind)
		rep.Metrics[pfx+".energy_share"] = ar.EnergyShare
		rep.Metrics[pfx+".max_rank_perturbation"] = float64(ar.TrustGated.MaxRankPerturbation)
		rep.Metrics[pfx+".pushed_rate"] = ar.TrustGated.PushedRate
		rep.Metrics[pfx+".blend_max_rank_perturbation"] = float64(ar.MaxRankPerturbation)
		rep.Metrics[pfx+".blend_pushed_rate"] = ar.PushedRate
	}
	rep.Metrics["slo.violations"] = float64(len(rep.Violations))
	return rep
}

// WriteFile writes the artifact with stable formatting.
func (r *Report) WriteFile(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
