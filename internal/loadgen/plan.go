package loadgen

import (
	"fmt"
	"hash/fnv"
	"time"

	"swrec/internal/datagen"
)

// Event is one planned request. Agent/Peer encode honest agents as
// their community index (≥ 0) and churn joiners as -(ordinal+2), so
// the plan stays a pure index structure the resolver can map onto any
// identically-seeded community.
type Event struct {
	Idx      int
	At       time.Duration // virtual arrival offset (open pacing)
	Endpoint string
	Agent    int // subject (reads) or write source; -1 when unused
	Peer     int // trust edge target; -1 when unused
	Product  int // product index; -1 when unused
	Topic    int // raw topic draw, resolver mods by taxonomy size; -1 unused
	Offset   int // list offset (agents endpoint)
	N        int // page/topK parameter
	Value    float64
}

// joinerOrdinal returns the joiner ordinal encoded in an agent ref, or
// -1 for honest/unused refs. -1 itself is the "unused" sentinel, so
// joiner ordinals start at encoding -2.
func joinerOrdinal(ref int) int {
	if ref <= -2 {
		return -ref - 2
	}
	return -1
}

func encodeJoiner(ordinal int) int { return -(ordinal + 2) }

// Plan-internal draw streams. Each decision channel hashes a distinct
// derived seed so adding a stream never shifts another stream's draws.
const (
	strClass = iota + 1
	strReadMix
	strWriteMix
	strAgent
	strWriteAgent
	strPeer
	strProduct
	strTopic
	strOffset
	strValue
	strJoinerPref
	strHot
)

func streamSeed(seed int64, stream int64) int64 {
	const stride = int64(-7046029254386353131) // golden-ratio stride (0x9E3779B97F4A7C15); wraps
	return seed + stream*stride
}

func u01(seed int64, stream int64, i int) float64 {
	return datagen.Uniform01(streamSeed(seed, stream), uint64(i))
}

// pendingWrite is a churn follow-up a join event schedules.
type pendingWrite struct {
	joiner  int // ordinal
	trust   bool
	peer    int
	product int
	value   float64
}

// issuedStmt is a retractable statement a later leave event deletes.
type issuedStmt struct {
	agent   int // encoded ref
	trust   bool
	peer    int
	product int
}

// Plan expands the scenario into its deterministic event sequence.
// The plan depends only on (scenario, seed): no clock, no global rand,
// no map-order leakage — the same scenario file always yields the same
// fingerprint, which Run embeds in the report so two BENCH_load.json
// artifacts are comparable only when they ran the same traffic.
func Plan(sc *Scenario) []Event {
	w := sc.Workload
	agents := sc.DatagenConfig().Agents
	products := sc.DatagenConfig().Products
	seed := sc.Seed

	readMix := newMixTable(w.ReadMix)
	writeMix := newMixTable(w.WriteMix)
	zAgent := datagen.NewZipf(streamSeed(seed, strAgent), w.ZipfS, agents)
	zWriter := datagen.NewZipf(streamSeed(seed, strWriteAgent), w.ZipfS, agents)
	zPeer := datagen.NewZipf(streamSeed(seed, strPeer), w.ZipfS, agents)
	zProduct := datagen.NewZipf(streamSeed(seed, strProduct), sc.Community.PopularitySkew, products)

	var interval time.Duration
	if w.Pacing == "open" {
		interval = time.Duration(float64(time.Second) / w.Rate)
	}

	flashAt := func(i int) *Flash {
		frac := float64(i) / float64(w.Events)
		for fi := range w.Flash {
			if frac >= w.Flash[fi].StartFrac && frac < w.Flash[fi].EndFrac {
				return &w.Flash[fi]
			}
		}
		return nil
	}

	events := make([]Event, 0, w.Events)
	var at time.Duration
	var joinCount int
	var pending []pendingWrite
	var issued []issuedStmt

	for i := 0; i < w.Events; i++ {
		ev := Event{Idx: i, Agent: -1, Peer: -1, Product: -1, Topic: -1, N: sc.TopK}
		fl := flashAt(i)
		if interval > 0 {
			step := interval
			if fl != nil && fl.Multiplier > 1 {
				step = time.Duration(float64(step) / fl.Multiplier)
			}
			at += step
			ev.At = at
		}

		if u01(seed, strClass, i) < w.ReadFraction {
			ev.Endpoint = readMix.pick(u01(seed, strReadMix, i))
			switch ev.Endpoint {
			case EpRecommendations, EpNeighbors, EpProfile, EpAgent:
				if fl != nil && fl.HotAgents > 0 {
					ev.Agent = int(u01(seed, strHot, i) * float64(fl.HotAgents))
					if ev.Agent >= agents {
						ev.Agent = agents - 1
					}
				} else {
					ev.Agent = zAgent.Pick(uint64(i))
				}
			case EpAgents:
				ev.Offset = int(u01(seed, strOffset, i) * float64(agents))
				ev.N = 25
			case EpProduct:
				ev.Product = zProduct.Pick(uint64(i))
			case EpTopic:
				ev.Topic = int(u01(seed, strTopic, i) * (1 << 20))
			case EpStats:
				// no parameters
			}
			events = append(events, ev)
			continue
		}

		// Write slot. Churn follow-ups from joined agents take priority
		// about half the time so joins are followed by their activity
		// while honest write traffic keeps flowing.
		if len(pending) > 0 && u01(seed, strJoinerPref, i) < 0.5 {
			p := pending[0]
			pending = pending[1:]
			ev.Agent = encodeJoiner(p.joiner)
			ev.Value = p.value
			if p.trust {
				ev.Endpoint = EpWriteTrust
				ev.Peer = p.peer
			} else {
				ev.Endpoint = EpWriteRating
				ev.Product = p.product
			}
			issued = append(issued, issuedStmt{agent: ev.Agent, trust: p.trust, peer: p.peer, product: p.product})
			events = append(events, ev)
			continue
		}

		ep := writeMix.pick(u01(seed, strWriteMix, i))
		if ep == EpWriteLeave && len(issued) == 0 {
			ep = EpWriteTrust // nothing to retract yet
		}
		switch ep {
		case EpWriteJoin:
			j := joinCount
			joinCount++
			ev.Endpoint = EpWriteJoin
			ev.Agent = encodeJoiner(j)
			for k := 0; k < w.Churn.TrustPerJoin; k++ {
				pending = append(pending, pendingWrite{
					joiner: j, trust: true,
					peer:  zPeer.Pick(uint64(i)*16 + uint64(k)),
					value: 0.4 + 0.6*u01(seed, strValue, i*16+k),
				})
			}
			for k := 0; k < w.Churn.RatingsPerJoin; k++ {
				pending = append(pending, pendingWrite{
					joiner:  j,
					product: zProduct.Pick(uint64(i)*16 + 8 + uint64(k)),
					value:   0.2 + 0.8*u01(seed, strValue, i*16+8+k),
				})
			}
		case EpWriteLeave:
			st := issued[0]
			issued = issued[1:]
			ev.Endpoint = EpWriteLeave
			ev.Agent = st.agent
			if st.trust {
				ev.Peer = st.peer
			} else {
				ev.Product = st.product
			}
		case EpWriteRating:
			ev.Endpoint = EpWriteRating
			ev.Agent = zWriter.Pick(uint64(i))
			ev.Product = zProduct.Pick(uint64(i))
			ev.Value = 0.2 + 0.8*u01(seed, strValue, i)
		default: // EpWriteTrust, and the empty-mix fallback
			ev.Endpoint = EpWriteTrust
			ev.Agent = zWriter.Pick(uint64(i))
			ev.Peer = zPeer.Pick(uint64(i))
			if ev.Peer == ev.Agent { // self-trust is invalid by model rule
				ev.Peer = (ev.Peer + 1) % agents
			}
			ev.Value = 0.4 + 0.6*u01(seed, strValue, i)
		}
		events = append(events, ev)
	}
	return events
}

// Fingerprint hashes the full event sequence. Two runs are comparable
// iff their fingerprints match; the determinism regression test pins
// one for the short preset.
func Fingerprint(events []Event) string {
	h := fnv.New64a()
	for _, ev := range events {
		fmt.Fprintf(h, "%d|%d|%s|%d|%d|%d|%d|%d|%d|%.6f\n",
			ev.Idx, ev.At.Nanoseconds(), ev.Endpoint, ev.Agent, ev.Peer,
			ev.Product, ev.Topic, ev.Offset, ev.N, ev.Value)
	}
	return fmt.Sprintf("%016x", h.Sum64())
}
