package loadgen

import (
	"context"
	"encoding/json"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// The executor is the one place in the deterministic harness that may
// read the wall clock: pacing and latency measurement are its job.
// Everything that shapes the traffic (the plan) is clock-free, which is
// what keeps the event sequence reproducible.
//
//nolint:detrand -- latency measurement and open-loop pacing are inherently wall-clock
func wallNow() time.Time { return time.Now() }

// EndpointStats aggregates one endpoint series.
type EndpointStats struct {
	Hist          Hist
	Statuses      map[int]uint64
	TransportErrs uint64
}

// Ack records one durably acknowledged write (202 + WAL sequence).
type Ack struct {
	EventIdx int
	Seq      uint64
}

// RunResult is the measured outcome of one executed plan.
type RunResult struct {
	Wall      time.Duration
	Completed int
	Endpoints map[string]*EndpointStats
	// Rungs records latency per answering strategy rung, keyed by the
	// procedure name the response provenance block reported.
	Rungs map[string]*Hist
	Acked []Ack
	// RetryAfterMin/Max bracket every Retry-After value seen on 503s
	// (both 0 when none were).
	RetryAfterMin, RetryAfterMax int
	Overloaded                   uint64
}

// workerStats is the per-worker accumulator; merged after the run so
// the hot path takes no locks.
type workerStats struct {
	endpoints map[string]*EndpointStats
	rungs     map[string]*Hist
	acked     []Ack
	raMin     int
	raMax     int
	overload  uint64
}

func newWorkerStats() *workerStats {
	return &workerStats{
		endpoints: make(map[string]*EndpointStats),
		rungs:     make(map[string]*Hist),
	}
}

func (ws *workerStats) endpoint(name string) *EndpointStats {
	st := ws.endpoints[name]
	if st == nil {
		st = &EndpointStats{Statuses: make(map[int]uint64)}
		ws.endpoints[name] = st
	}
	return st
}

// provenance is the slice of the response envelope the harness reads
// to attribute latency to a strategy rung.
type provenance struct {
	Strategy *struct {
		Procedure string `json:"procedure"`
	} `json:"strategy"`
	Seq uint64 `json:"seq"`
}

func laddered(ep string) bool {
	return ep == EpRecommendations || ep == EpNeighbors
}

// Runner executes a plan against a target.
type Runner struct {
	Scenario *Scenario
	Plan     []Event
	Resolver *Resolver
	Target   Target
}

// Run drives the plan to completion (or ctx cancellation) and returns
// the merged measurements. Closed-loop pacing measures service time;
// open-loop measures from each event's scheduled arrival, so executor
// backlog counts against the SLO exactly as client queueing would in
// production.
func (r *Runner) Run(ctx context.Context) (*RunResult, error) {
	w := r.Scenario.Workload
	workers := w.Concurrency
	if workers < 1 {
		workers = 1
	}

	type timedEvent struct {
		ev        *Event
		scheduled time.Time
	}

	var (
		wg      sync.WaitGroup
		all     = make([]*workerStats, workers)
		next    atomic.Int64
		feed    chan timedEvent
		started = wallNow()
	)

	open := w.Pacing == "open"
	if open {
		feed = make(chan timedEvent, 4*workers)
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer close(feed)
			for i := range r.Plan {
				ev := &r.Plan[i]
				sched := started.Add(ev.At)
				if d := sched.Sub(wallNow()); d > 0 {
					select {
					case <-time.After(d):
					case <-ctx.Done():
						return
					}
				}
				select {
				case feed <- timedEvent{ev: ev, scheduled: sched}:
				case <-ctx.Done():
					return
				}
			}
		}()
	}

	var completed atomic.Int64
	for wi := 0; wi < workers; wi++ {
		ws := newWorkerStats()
		all[wi] = ws
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				var te timedEvent
				if open {
					var ok bool
					select {
					case te, ok = <-feed:
						if !ok {
							return
						}
					case <-ctx.Done():
						return
					}
				} else {
					if ctx.Err() != nil {
						return
					}
					i := int(next.Add(1)) - 1
					if i >= len(r.Plan) {
						return
					}
					te = timedEvent{ev: &r.Plan[i], scheduled: wallNow()}
				}
				r.execute(te.ev, te.scheduled, ws)
				completed.Add(1)
			}
		}()
	}
	wg.Wait()

	res := &RunResult{
		Wall:      wallNow().Sub(started),
		Completed: int(completed.Load()),
		Endpoints: make(map[string]*EndpointStats),
		Rungs:     make(map[string]*Hist),
	}
	for _, ws := range all {
		for name, st := range ws.endpoints {
			dst := res.Endpoints[name]
			if dst == nil {
				dst = &EndpointStats{Statuses: make(map[int]uint64)}
				res.Endpoints[name] = dst
			}
			dst.Hist.Merge(&st.Hist)
			dst.TransportErrs += st.TransportErrs
			for code, n := range st.Statuses {
				dst.Statuses[code] += n
			}
		}
		for rung, h := range ws.rungs {
			dst := res.Rungs[rung]
			if dst == nil {
				dst = &Hist{}
				res.Rungs[rung] = dst
			}
			dst.Merge(h)
		}
		res.Acked = append(res.Acked, ws.acked...)
		res.Overloaded += ws.overload
		if ws.raMin > 0 && (res.RetryAfterMin == 0 || ws.raMin < res.RetryAfterMin) {
			res.RetryAfterMin = ws.raMin
		}
		if ws.raMax > res.RetryAfterMax {
			res.RetryAfterMax = ws.raMax
		}
	}
	return res, ctx.Err()
}

func (r *Runner) execute(ev *Event, scheduled time.Time, ws *workerStats) {
	method, path, body := r.Resolver.Request(ev)
	status, resp, retryAfter, err := r.Target.Do(method, path, body)
	lat := wallNow().Sub(scheduled)

	st := ws.endpoint(ev.Endpoint)
	st.Hist.Record(lat)
	if err != nil {
		st.TransportErrs++
		return
	}
	st.Statuses[status]++

	switch {
	case status == 200 && laddered(ev.Endpoint):
		var p provenance
		if json.Unmarshal(resp, &p) == nil && p.Strategy != nil && p.Strategy.Procedure != "" {
			h := ws.rungs[p.Strategy.Procedure]
			if h == nil {
				h = &Hist{}
				ws.rungs[p.Strategy.Procedure] = h
			}
			h.Record(lat)
		}
	case status == 202:
		var p provenance
		if json.Unmarshal(resp, &p) == nil {
			ws.acked = append(ws.acked, Ack{EventIdx: ev.Idx, Seq: p.Seq})
		}
	case status == 503:
		ws.overload++
		if secs, aerr := strconv.Atoi(retryAfter); aerr == nil {
			if ws.raMin == 0 || secs < ws.raMin {
				ws.raMin = secs
			}
			if secs > ws.raMax {
				ws.raMax = secs
			}
		}
	}
}
