package loadgen

import (
	"context"
	"fmt"
	"os"
	"testing"
	"time"

	"swrec/internal/ingest"
)

// TestScaleProbe times the cost structure of the full preset on the
// current hardware. It is not a correctness test; run it explicitly:
//
//	SWREC_SCALE_PROBE=1 go test ./internal/loadgen -run TestScaleProbe -v -timeout 1h
func TestScaleProbe(t *testing.T) {
	if os.Getenv("SWREC_SCALE_PROBE") == "" {
		t.Skip("set SWREC_SCALE_PROBE=1 to run the scale probe")
	}
	sc := Full()
	sc.Attacks = sc.Attacks[:1]
	sc.Samples = 4

	stamp := func(label string, since time.Time) time.Time {
		now := time.Now()
		fmt.Printf("PROBE %-24s %v\n", label, now.Sub(since))
		return now
	}

	start := time.Now()
	p, err := BuildInProc(context.Background(), sc, t.TempDir(), ingest.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	now := stamp("build (gen+inject+2 engines)", start)

	c := Client{T: HandlerTarget{Handler: p.Handler}}
	ag := p.Resolver.AgentRef(12345)
	if _, err := c.Recommendations(ag, sc.TopK); err != nil {
		t.Fatal(err)
	}
	now = stamp("cold recommendation", now)
	if _, err := c.Recommendations(ag, sc.TopK); err != nil {
		t.Fatal(err)
	}
	now = stamp("warm recommendation", now)
	for i := 0; i < 8; i++ {
		if _, err := c.Recommendations(p.Resolver.AgentRef(1000+i*777), sc.TopK); err != nil {
			t.Fatal(err)
		}
	}
	now = stamp("8 more cold recs", now)

	reports, err := p.MeasureAttacks(sc)
	if err != nil {
		t.Fatal(err)
	}
	stamp("MeasureAttacks (1 atk, 4 samples)", now)
	fmt.Printf("PROBE report: %+v\n", reports[0].Confinement)
}

// TestPlanUniqueTargets sizes the full preset: it counts the unique
// agents the expensive endpoints (recommendations/neighbors) touch for
// candidate event-count / skew combinations, which at ~0.36s per cold
// neighborhood on the reference box is what decides the wall time.
func TestPlanUniqueTargets(t *testing.T) {
	if os.Getenv("SWREC_SCALE_PROBE") == "" {
		t.Skip("set SWREC_SCALE_PROBE=1 to run the scale probe")
	}
	for _, cand := range []struct {
		events int
		zipfS  float64
	}{
		{60000, 1.1}, {20000, 1.1}, {20000, 1.3}, {15000, 1.4}, {12000, 1.4}, {12000, 1.5}, {20000, 1.5},
	} {
		sc := Full()
		sc.Workload.Events = cand.events
		sc.Workload.ZipfS = cand.zipfS
		events := Plan(sc)
		unique := map[int]bool{}
		heavy := 0
		for i := range events {
			ev := &events[i]
			if ev.Endpoint == EpRecommendations || ev.Endpoint == EpNeighbors {
				heavy++
				unique[ev.Agent] = true
			}
		}
		fmt.Printf("PROBE events=%d zipfS=%.2f heavy=%d unique=%d est_cold_wall=%.0fs\n",
			cand.events, cand.zipfS, heavy, len(unique), float64(len(unique))*0.36)
	}
}
