package loadgen

import (
	"context"
	"encoding/json"
	"math/rand"
	"testing"
	"time"

	"swrec/internal/attack"
	"swrec/internal/ingest"
)

// smokeScenario is a seconds-scale scenario exercising every moving
// part: mixed reads, churn writes, a flash window, one Sybil ring.
func smokeScenario() *Scenario {
	sc := &Scenario{
		Name: "smoke",
		Seed: 7,
		Community: Community{
			Agents: 120, Products: 150, Clusters: 4,
			MeanRatings: 6, MeanTrust: 5, PopularitySkew: 1.0,
		},
		Workload: Workload{
			Events: 800, Concurrency: 6, ZipfS: 1.0, ReadFraction: 0.8,
			Churn: Churn{TrustPerJoin: 2, RatingsPerJoin: 1},
			Flash: []Flash{{StartFrac: 0.4, EndFrac: 0.6, Multiplier: 2, HotAgents: 4}},
		},
		Attacks: []attack.Spec{{
			Kind: attack.SybilRing, Count: 6, VictimIdx: 11, PushProducts: 2,
			MaxEnergyShare: 0.35, MaxRankPerturbation: 10, MaxPushedRate: 0.75,
		}},
		Samples: 8,
		TopK:    8,
		Warmup:  true,
	}
	if err := sc.Validate(); err != nil {
		panic(err)
	}
	return sc
}

// TestPlanDeterministic pins the determinism contract the acceptance
// criteria name: fixed seed ⇒ identical event sequence, every time.
func TestPlanDeterministic(t *testing.T) {
	sc := Short()
	a := Plan(sc)
	b := Plan(sc)
	if len(a) != sc.Workload.Events {
		t.Fatalf("plan has %d events, scenario wants %d", len(a), sc.Workload.Events)
	}
	fa, fb := Fingerprint(a), Fingerprint(b)
	if fa != fb {
		t.Fatalf("same scenario planned twice: %s vs %s", fa, fb)
	}
	other := Short()
	other.Seed++
	if fo := Fingerprint(Plan(other)); fo == fa {
		t.Fatalf("different seed produced identical plan %s", fo)
	}
}

// TestPlanChurnConsistency replays the plan's churn bookkeeping: every
// leave retracts a statement some earlier event actually wrote, and
// every joiner writes only after its join.
func TestPlanChurnConsistency(t *testing.T) {
	sc := Short()
	plan := Plan(sc)
	joined := map[int]bool{}
	type stmt struct{ agent, peer, product int }
	written := map[stmt]bool{}
	for _, ev := range plan {
		switch ev.Endpoint {
		case EpWriteJoin:
			j := joinerOrdinal(ev.Agent)
			if j < 0 {
				t.Fatalf("event %d: join with honest agent ref %d", ev.Idx, ev.Agent)
			}
			if joined[j] {
				t.Fatalf("event %d: joiner %d joined twice", ev.Idx, j)
			}
			joined[j] = true
		case EpWriteTrust, EpWriteRating:
			if j := joinerOrdinal(ev.Agent); j >= 0 && !joined[j] {
				t.Fatalf("event %d: joiner %d writes before joining", ev.Idx, j)
			}
			written[stmt{ev.Agent, ev.Peer, ev.Product}] = true
		case EpWriteLeave:
			if !written[stmt{ev.Agent, ev.Peer, ev.Product}] {
				t.Fatalf("event %d: leave retracts a statement never written (agent=%d peer=%d product=%d)",
					ev.Idx, ev.Agent, ev.Peer, ev.Product)
			}
		}
	}
	if len(joined) == 0 {
		t.Fatal("short preset planned no joins; churn untested")
	}
}

// TestRunOpenPacing covers the open-loop executor path: the plan
// carries a compressed arrival schedule through flash windows, the
// dispatcher honors it (the run cannot finish before the last scheduled
// arrival), and latency is measured from scheduled arrival so the
// status-set invariants still hold.
func TestRunOpenPacing(t *testing.T) {
	sc := &Scenario{
		Name: "open-smoke",
		Seed: 23,
		Community: Community{
			Agents: 120, Products: 150, Clusters: 4,
			MeanRatings: 6, MeanTrust: 5, PopularitySkew: 1.0,
		},
		Workload: Workload{
			Events: 600, Concurrency: 6, Pacing: "open", Rate: 3000,
			ZipfS: 1.0, ReadFraction: 0.8,
			Churn: Churn{TrustPerJoin: 1, RatingsPerJoin: 1},
			Flash: []Flash{{StartFrac: 0.4, EndFrac: 0.6, Multiplier: 3, HotAgents: 4}},
		},
		Warmup: true,
	}
	if err := sc.Validate(); err != nil {
		t.Fatal(err)
	}

	plan := Plan(sc)
	base := time.Duration(float64(time.Second) / sc.Workload.Rate)
	for i := 1; i < len(plan); i++ {
		step := plan[i].At - plan[i-1].At
		if step <= 0 {
			t.Fatalf("event %d: arrival schedule not increasing (%v after %v)", i, plan[i].At, plan[i-1].At)
		}
		frac := float64(i) / float64(len(plan))
		if frac >= 0.45 && frac < 0.55 {
			if step >= base {
				t.Fatalf("event %d: flash window did not compress arrivals (step %v, base %v)", i, step, base)
			}
		} else if frac < 0.35 || frac >= 0.65 {
			if step != base {
				t.Fatalf("event %d: steady-state step %v, want %v", i, step, base)
			}
		}
	}

	ctx := context.Background()
	p, err := BuildInProc(ctx, sc, t.TempDir(), ingest.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	runner := &Runner{Scenario: sc, Plan: plan, Resolver: p.Resolver, Target: HandlerTarget{Handler: p.Handler}}
	res, err := runner.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != len(plan) {
		t.Fatalf("completed %d of %d events", res.Completed, len(plan))
	}
	if last := plan[len(plan)-1].At; res.Wall < last {
		t.Fatalf("open run finished in %v, before the last scheduled arrival %v", res.Wall, last)
	}
	for _, v := range sc.SLO.Check(res) {
		t.Errorf("SLO violation: %s", v)
	}
	if len(res.Acked) == 0 {
		t.Fatal("no write was durably acked")
	}
}

// TestHistQuantiles drives the log-linear histogram against exact
// order statistics and checks the ≤ ~3%-per-octave error bound plus
// merge equivalence.
func TestHistQuantiles(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	var one Hist
	var parts [4]Hist
	for i := 0; i < 20000; i++ {
		// Spread over 1µs..100ms, the range requests live in.
		d := time.Duration(float64(time.Microsecond) * (1 + 1e5*rng.Float64()))
		one.Record(d)
		parts[i%4].Record(d)
	}
	var merged Hist
	for i := range parts {
		merged.Merge(&parts[i])
	}
	for _, q := range []float64{0.5, 0.9, 0.99, 0.999} {
		if got, want := merged.Quantile(q), one.Quantile(q); got != want {
			t.Fatalf("q%.3f: merged %v != single %v", q, got, want)
		}
	}
	// Spot-check accuracy against a known uniform distribution.
	var u Hist
	for v := 1; v <= 100000; v++ {
		u.Record(time.Duration(v) * time.Microsecond)
	}
	for _, q := range []float64{0.5, 0.99, 0.999} {
		got := float64(u.Quantile(q))
		want := q * 1e5 * 1e3 // q-th value in ns
		if got < want*0.97 || got > want*1.04 {
			t.Fatalf("q%.3f: got %.0fns, want %.0fns ±4%%", q, got, want)
		}
	}
	if u.Count() != 100000 {
		t.Fatalf("count %d", u.Count())
	}
	if u.Max() != 100000*time.Microsecond {
		t.Fatalf("max %v", u.Max())
	}
}

// TestRunSmoke is the end-to-end harness test: build the attacked
// community in-process, measure confinement, run the full mixed
// workload, and check the report's invariants.
func TestRunSmoke(t *testing.T) {
	sc := smokeScenario()
	ctx := context.Background()
	p, err := BuildInProc(ctx, sc, t.TempDir(), ingest.Config{
		SnapshotEvery: 64, SnapshotInterval: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	attacks, err := p.MeasureAttacks(sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(attacks) != 1 {
		t.Fatalf("measured %d attacks, want 1", len(attacks))
	}
	for _, ar := range attacks {
		if len(ar.Violations) > 0 {
			t.Errorf("confinement violated: %v", ar.Violations)
		}
		if ar.Samples == 0 {
			t.Error("confinement measured zero samples")
		}
	}

	plan := Plan(sc)
	runner := &Runner{Scenario: sc, Plan: plan, Resolver: p.Resolver, Target: HandlerTarget{Handler: p.Handler}}
	res, err := runner.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed != len(plan) {
		t.Fatalf("completed %d of %d events", res.Completed, len(plan))
	}

	// Status-set invariants, with latency budgets disabled: the smoke
	// must never see a status its endpoint class does not allow, and
	// never an unexpected error.
	for _, v := range sc.SLO.Check(res) {
		t.Errorf("SLO violation: %s", v)
	}
	if len(res.Acked) == 0 {
		t.Fatal("no write was durably acked")
	}
	if len(res.Rungs) == 0 {
		t.Fatal("no strategy rung latency recorded; provenance parsing broken")
	}

	// The server's own swrec_http accounting must agree with the
	// harness's client-side view. The expvar maps are process-global
	// (other tests in this binary add to them), so the server count is a
	// lower bound, never below what this run sent.
	status, body, _, err := (HandlerTarget{Handler: p.Handler}).Do("GET", "/v1/metrics", nil)
	if err != nil || status != 200 {
		t.Fatalf("GET /v1/metrics: status %d err %v", status, err)
	}
	var metrics struct {
		HTTP map[string]float64 `json:"swrec_http"`
	}
	if err := json.Unmarshal(body, &metrics); err != nil {
		t.Fatalf("metrics parse: %v", err)
	}
	for _, ep := range []string{EpRecommendations, EpNeighbors, EpWriteTrust} {
		sent := res.Endpoints[ep].Hist.Count()
		if got := metrics.HTTP[ep+"_requests"]; got < float64(sent) {
			t.Errorf("swrec_http %s_requests = %.0f, but the harness sent %d", ep, got, sent)
		}
	}

	rep := BuildReport(sc, plan, res, attacks)
	for _, key := range []string{
		"recommendations.p99_ms", "neighbors.p99_ms", "overall.error_rate",
		"write_trust.error_rate", "attack.sybil-ring.energy_share", "slo.violations",
	} {
		if _, ok := rep.Metrics[key]; !ok {
			t.Errorf("report metrics missing %q", key)
		}
	}
	if rep.Metrics["slo.violations"] != 0 {
		t.Errorf("report records %v SLO violations: %v", rep.Metrics["slo.violations"], rep.Violations)
	}
	if rep.PlanFingerprint != Fingerprint(plan) {
		t.Error("report fingerprint mismatch")
	}
	path := t.TempDir() + "/BENCH_load.json"
	if err := rep.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	reread, err := Load(path) // not a scenario; must fail cleanly
	if err == nil && reread != nil && reread.Name == "" {
		t.Error("Load accepted a report artifact as a scenario")
	}
}
