package loadgen

import (
	"context"
	"fmt"
	"net/http"
	"time"

	"swrec/internal/api"
	"swrec/internal/attack"
	"swrec/internal/cf"
	"swrec/internal/core"
	"swrec/internal/datagen"
	"swrec/internal/engine"
	"swrec/internal/ingest"
	"swrec/internal/model"
)

// InProc is a hermetic swrecd: the scenario community (with attacks
// injected) served by a real engine behind the real API handler, plus a
// second clean build of the same community for before/after confinement
// measurement. It deliberately holds no community pointer — the engine
// owns epochs (snapshotpin) — only the plain ID lists the resolver and
// the measures need.
type InProc struct {
	Handler  http.Handler
	Baseline http.Handler // same seed, no attacks; nil when no attacks
	Engine   *engine.Engine
	Pipeline *ingest.Pipeline
	Resolver *Resolver
	Honest   []model.AgentID
	Attacks  []*attack.Result
}

// Close flushes and shuts down the write pipeline.
func (p *InProc) Close() error {
	if p.Pipeline != nil {
		return p.Pipeline.Close()
	}
	return nil
}

func engineOptions() core.Options {
	return core.Options{
		Alpha: 0.5, AlphaSet: true,
		Metric: core.Appleseed,
		CF:     cf.Options{Measure: cf.Cosine, Representation: cf.Taxonomy},
	}
}

// topicSample picks up to 512 qualified topic paths, stride-spread so
// the sample covers the tree without holding all ~20k paths at 10⁵
// scale.
func topicSample(comm *model.Community) []string {
	tax := comm.Taxonomy()
	if tax == nil {
		return nil
	}
	topics := tax.Topics()
	const maxPaths = 512
	stride := len(topics) / maxPaths
	if stride < 1 {
		stride = 1
	}
	paths := make([]string, 0, maxPaths)
	for i := 0; i < len(topics) && len(paths) < maxPaths; i += stride {
		paths = append(paths, tax.QualifiedName(topics[i]))
	}
	return paths
}

// BuildInProc generates the scenario community, injects the configured
// attacks, and serves it in-process. walDir enables the durable write
// path (required for write traffic; reads-only scenarios may pass "").
// ingestCfg tunes the pipeline (zero value = ingest defaults).
func BuildInProc(ctx context.Context, sc *Scenario, walDir string, ingestCfg ingest.Config) (*InProc, error) {
	cfg := sc.DatagenConfig()
	comm, _ := datagen.Generate(cfg)

	honest := append([]model.AgentID(nil), comm.Agents()...)
	products := append([]model.ProductID(nil), comm.Products()...)

	p := &InProc{
		Honest: honest,
		Resolver: &Resolver{
			AgentIDs:   honest,
			ProductIDs: products,
			TopicPaths: topicSample(comm),
			BaseHost:   cfg.BaseHost,
		},
	}
	for i, spec := range sc.Attacks {
		res, err := attack.Inject(comm, honest, spec, i)
		if err != nil {
			return nil, err
		}
		p.Attacks = append(p.Attacks, res)
	}

	eng, err := engine.New(comm, engineOptions(), engine.Config{})
	if err != nil {
		return nil, err
	}
	p.Engine = eng
	if sc.Warmup {
		eng.WarmupCtx(ctx, 0)
	}

	apiCfg := api.Config{ReadBudget: time.Duration(sc.ReadBudgetMS) * time.Millisecond}
	if walDir != "" {
		pipe, err := ingest.Open(eng, walDir, ingestCfg)
		if err != nil {
			return nil, err
		}
		p.Pipeline = pipe
		p.Handler = api.NewWithConfig(eng, pipe, apiCfg)
	} else {
		p.Handler = api.NewWithConfig(eng, nil, apiCfg)
	}

	if len(sc.Attacks) > 0 {
		// Clean twin for the before/after comparison. Same seed, same
		// generation, no attacks, read-only.
		clean, _ := datagen.Generate(cfg)
		cleanEng, err := engine.New(clean, engineOptions(), engine.Config{})
		if err != nil {
			return nil, fmt.Errorf("baseline engine: %w", err)
		}
		p.Baseline = api.NewWithConfig(cleanEng, nil, apiCfg)
	}
	return p, nil
}

// MeasureAttacks probes confinement for every injected attack through
// the API surface (the same one the traffic hits). Call it before the
// load phase mutates the community, so the numbers compare the attacked
// community against its clean twin rather than against churn.
//
// Each attack is measured twice: once under the serving default (the
// alpha-blend of trust and profile similarity, reported as the embedded
// Confinement) and once with weighting pinned to pure trust via the
// API's alpha=1 override (TrustGated). The Spec bounds are asserted
// against the trust-gated numbers — that is the paper's claim — while
// the default-blend numbers are drift-tracked by benchjson, so a
// regression in either mode is caught.
func (p *InProc) MeasureAttacks(sc *Scenario) ([]AttackReport, error) {
	if len(p.Attacks) == 0 {
		return nil, nil
	}
	base := Client{T: HandlerTarget{Handler: p.Baseline}}
	attacked := Client{T: HandlerTarget{Handler: p.Handler}}
	baseTrust := Client{T: base.T, Query: "alpha=1"}
	attackedTrust := Client{T: attacked.T, Query: "alpha=1"}
	reports := make([]AttackReport, 0, len(p.Attacks))
	for _, res := range p.Attacks {
		sample := attack.SampleHonest(p.Honest, res.Victim, sc.Samples)
		blend, err := attack.Measure(base, attacked, res, sample, sc.TopK)
		if err != nil {
			return nil, err
		}
		gated, err := attack.Measure(baseTrust, attackedTrust, res, sample, sc.TopK)
		if err != nil {
			return nil, err
		}
		reports = append(reports, AttackReport{
			Confinement: blend,
			TrustGated:  gated,
			Spec:        res.Spec,
			Violations:  gated.Violations(res.Spec),
		})
	}
	return reports, nil
}
