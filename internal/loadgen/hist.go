package loadgen

import (
	"math/bits"
	"time"
)

// Hist is an HDR-style log-linear latency histogram: each power-of-two
// octave of nanoseconds is split into 32 linear sub-buckets, bounding
// quantile error at ~3% while keeping the whole structure a flat array
// of counters — no allocation per Record, O(buckets) quantile reads.
// The zero value is ready to use. Not safe for concurrent use: the
// executor keeps one Hist per worker per series and merges at the end.
type Hist struct {
	counts []uint64
	n      uint64
	sum    uint64
	min    uint64
	max    uint64
}

// subBits sets the linear resolution per octave: 2^5 = 32 sub-buckets.
const subBits = 5

// histBuckets covers values up to ~2^41 ns (~36 minutes), far beyond
// any request latency the harness meters.
const histBuckets = (42 - subBits) << subBits

// bucketOf maps a nanosecond value to its bucket index.
func bucketOf(v uint64) int {
	if v < 1<<subBits {
		return int(v)
	}
	msb := bits.Len64(v) - 1 // ≥ subBits
	shift := msb - subBits
	b := (msb-subBits)<<subBits + int(v>>shift)
	if b >= histBuckets {
		return histBuckets - 1
	}
	return b
}

// bucketHi returns the inclusive upper edge of a bucket — the
// conservative representative a quantile read reports.
func bucketHi(b int) uint64 {
	if b < 1<<subBits {
		return uint64(b)
	}
	g := b >> subBits // msb - subBits
	rem := uint64(b & (1<<subBits - 1))
	shift := g - 1
	lo := (1<<subBits + rem) << shift
	return lo + 1<<shift - 1
}

// Record adds one latency observation.
//
//swrec:hotpath
func (h *Hist) Record(d time.Duration) {
	v := uint64(d)
	if d < 0 {
		v = 0
	}
	if h.counts == nil {
		h.counts = make([]uint64, histBuckets) //nolint:hotalloc -- lazy one-time bucket init: amortized to zero across the run's millions of records
	}
	h.counts[bucketOf(v)]++
	h.n++
	h.sum += v
	if h.n == 1 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
}

// Merge folds other into h.
func (h *Hist) Merge(other *Hist) {
	if other == nil || other.n == 0 {
		return
	}
	if h.counts == nil {
		h.counts = make([]uint64, histBuckets)
	}
	for i, c := range other.counts {
		h.counts[i] += c
	}
	if h.n == 0 || other.min < h.min {
		h.min = other.min
	}
	if other.max > h.max {
		h.max = other.max
	}
	h.n += other.n
	h.sum += other.sum
}

// Count returns the number of recorded observations.
func (h *Hist) Count() uint64 { return h.n }

// Mean returns the mean latency, or 0 when empty.
func (h *Hist) Mean() time.Duration {
	if h.n == 0 {
		return 0
	}
	return time.Duration(h.sum / h.n)
}

// Max returns the largest recorded value.
func (h *Hist) Max() time.Duration { return time.Duration(h.max) }

// Quantile returns the latency at quantile q ∈ [0,1] (upper bucket
// edge, so the estimate never understates), or 0 when empty.
func (h *Hist) Quantile(q float64) time.Duration {
	if h.n == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := uint64(q * float64(h.n))
	if target < 1 {
		target = 1
	}
	var cum uint64
	for b, c := range h.counts {
		cum += c
		if cum >= target {
			hi := bucketHi(b)
			if hi > h.max {
				hi = h.max
			}
			return time.Duration(hi)
		}
	}
	return time.Duration(h.max)
}
