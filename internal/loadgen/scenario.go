// Package loadgen is the deterministic production-traffic model behind
// cmd/swrecload. A Scenario (JSON file or preset) describes a synthetic
// community, a seeded workload — Zipf agent popularity, read/write mix,
// flash crowds, join/leave churn through the /v1 write API, open- or
// closed-loop pacing — plus injected attacks and the SLOs the run must
// meet. Plan expands the scenario into a fully deterministic event
// sequence (fixed seed ⇒ byte-identical plan, independent of executor
// worker count), Run drives it against any Target (in-process handler
// or live server) recording HDR-style latency per endpoint and per
// strategy rung, and Report flattens the outcome into the
// BENCH_load.json artifact that benchjson -diff gates.
package loadgen

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"

	"swrec/internal/attack"
	"swrec/internal/datagen"
)

// Endpoint series keys. Reads mirror the /v1 read surface; writes are
// keyed by mutation family rather than URL so Retry-After and overload
// behavior aggregate usefully.
const (
	EpRecommendations = "recommendations"
	EpNeighbors       = "neighbors"
	EpProfile         = "profile"
	EpAgent           = "agent"
	EpAgents          = "agents"
	EpProduct         = "product"
	EpTopic           = "topic"
	EpStats           = "stats"
	EpWriteTrust      = "write_trust"
	EpWriteRating     = "write_rating"
	EpWriteJoin       = "write_join"
	EpWriteLeave      = "write_leave"
)

// Community sizes the synthetic population the scenario runs against.
// It maps onto datagen.Config; zero fields inherit the datagen preset.
type Community struct {
	Agents          int     `json:"agents"`
	Products        int     `json:"products"`
	Clusters        int     `json:"clusters,omitempty"`
	MeanRatings     int     `json:"meanRatings,omitempty"`
	MeanTrust       int     `json:"meanTrust,omitempty"`
	ClusterFidelity float64 `json:"clusterFidelity,omitempty"`
	PopularitySkew  float64 `json:"popularitySkew,omitempty"`
	// Taxonomy picks the datagen preset: "small" (default), "book",
	// "dvd", "unspsc".
	Taxonomy string `json:"taxonomy,omitempty"`
}

// Churn shapes what a joining agent does after its POST /v1/agents.
type Churn struct {
	// TrustPerJoin / RatingsPerJoin schedule that many follow-up writes
	// from each joiner at later write slots.
	TrustPerJoin   int `json:"trustPerJoin"`
	RatingsPerJoin int `json:"ratingsPerJoin"`
}

// Flash is one flash-crowd window, positioned by event fraction so it
// is pacing-independent. While active, open-loop arrival rate is
// multiplied and read traffic concentrates on the HotAgents most
// popular agents.
type Flash struct {
	StartFrac  float64 `json:"startFrac"`
	EndFrac    float64 `json:"endFrac"`
	Multiplier float64 `json:"multiplier"`
	HotAgents  int     `json:"hotAgents"`
}

// Workload is the traffic model.
type Workload struct {
	Events      int `json:"events"`
	Concurrency int `json:"concurrency"`
	// Pacing is "closed" (each worker issues the next event when the
	// previous completes; measures service latency) or "open" (events
	// arrive on a schedule regardless of completions; latency includes
	// queue wait, which is what a production SLO sees).
	Pacing string  `json:"pacing"`
	Rate   float64 `json:"rate,omitempty"` // open-loop arrivals/sec
	// ZipfS skews which agent a read targets (popularity); 0 = uniform.
	ZipfS        float64 `json:"zipfS"`
	ReadFraction float64 `json:"readFraction"`
	// ReadMix / WriteMix weight the endpoints within each class; they
	// need not sum to 1. Missing maps get defaults.
	ReadMix  map[string]float64 `json:"readMix,omitempty"`
	WriteMix map[string]float64 `json:"writeMix,omitempty"`
	Churn    Churn              `json:"churn"`
	Flash    []Flash            `json:"flash,omitempty"`
}

// Scenario is one load-harness run, loadable from JSON.
type Scenario struct {
	Name      string        `json:"name"`
	Seed      int64         `json:"seed"`
	Community Community     `json:"community"`
	Workload  Workload      `json:"workload"`
	Attacks   []attack.Spec `json:"attacks,omitempty"`
	SLO       SLO           `json:"slo"`
	// Samples is how many honest agents the confinement measures probe.
	Samples int `json:"samples,omitempty"`
	// TopK is the recommendation depth the rank-perturbation bound
	// applies to.
	TopK int `json:"topK,omitempty"`
	// Warmup precomputes every agent's neighborhood before traffic
	// starts. Leave false at large scale: the traffic itself warms the
	// snapshot caches, which is the production-shaped choice.
	Warmup bool `json:"warmup,omitempty"`
	// ReadBudgetMS bounds each read's ladder walk (api.Config.ReadBudget).
	ReadBudgetMS int `json:"readBudgetMs,omitempty"`
}

// DatagenConfig translates the community section into a datagen.Config.
func (sc *Scenario) DatagenConfig() datagen.Config {
	cfg := datagen.SmallScale()
	switch sc.Community.Taxonomy {
	case "", "small":
		// keep the SmallScale taxonomy
	case "book":
		cfg.Taxonomy = datagen.BookTaxonomy()
	case "dvd":
		cfg.Taxonomy = datagen.DVDTaxonomy()
	case "unspsc":
		cfg.Taxonomy = datagen.UNSPSCTaxonomy()
	}
	cfg.Seed = sc.Seed
	if sc.Community.Agents > 0 {
		cfg.Agents = sc.Community.Agents
	}
	if sc.Community.Products > 0 {
		cfg.Products = sc.Community.Products
	}
	if sc.Community.Clusters > 0 {
		cfg.Clusters = sc.Community.Clusters
	}
	if sc.Community.MeanRatings > 0 {
		cfg.MeanRatings = sc.Community.MeanRatings
	}
	if sc.Community.MeanTrust > 0 {
		cfg.MeanTrust = sc.Community.MeanTrust
	}
	if sc.Community.ClusterFidelity > 0 {
		cfg.ClusterFidelity = sc.Community.ClusterFidelity
	}
	if sc.Community.PopularitySkew > 0 {
		cfg.PopularitySkew = sc.Community.PopularitySkew
	}
	return cfg
}

// Validate normalizes the scenario in place and rejects nonsense early,
// so a bad scenario file fails before minutes of community generation.
func (sc *Scenario) Validate() error {
	if sc.Name == "" {
		return fmt.Errorf("scenario: name required")
	}
	if sc.Seed == 0 {
		sc.Seed = 1
	}
	w := &sc.Workload
	if w.Events <= 0 {
		return fmt.Errorf("scenario %s: workload.events must be > 0", sc.Name)
	}
	if w.Concurrency <= 0 {
		w.Concurrency = 4
	}
	switch w.Pacing {
	case "":
		w.Pacing = "closed"
	case "closed", "open":
	default:
		return fmt.Errorf("scenario %s: pacing %q (want closed|open)", sc.Name, w.Pacing)
	}
	if w.Pacing == "open" && w.Rate <= 0 {
		return fmt.Errorf("scenario %s: open pacing requires rate > 0", sc.Name)
	}
	if w.ReadFraction < 0 || w.ReadFraction > 1 {
		return fmt.Errorf("scenario %s: readFraction %v outside [0,1]", sc.Name, w.ReadFraction)
	}
	if len(w.ReadMix) == 0 {
		w.ReadMix = map[string]float64{
			EpRecommendations: 4, EpNeighbors: 2, EpProfile: 1,
			EpAgent: 1, EpAgents: 1, EpProduct: 1, EpTopic: 1, EpStats: 0.5,
		}
	}
	if len(w.WriteMix) == 0 {
		w.WriteMix = map[string]float64{
			EpWriteTrust: 3, EpWriteRating: 3, EpWriteJoin: 1, EpWriteLeave: 1,
		}
	}
	for ep := range w.ReadMix {
		switch ep {
		case EpRecommendations, EpNeighbors, EpProfile, EpAgent, EpAgents, EpProduct, EpTopic, EpStats:
		default:
			return fmt.Errorf("scenario %s: unknown read endpoint %q", sc.Name, ep)
		}
	}
	for ep := range w.WriteMix {
		switch ep {
		case EpWriteTrust, EpWriteRating, EpWriteJoin, EpWriteLeave:
		default:
			return fmt.Errorf("scenario %s: unknown write endpoint %q", sc.Name, ep)
		}
	}
	for i, f := range w.Flash {
		if f.StartFrac < 0 || f.EndFrac > 1 || f.StartFrac >= f.EndFrac {
			return fmt.Errorf("scenario %s: flash[%d] window [%v,%v) invalid", sc.Name, i, f.StartFrac, f.EndFrac)
		}
		if f.Multiplier <= 0 {
			w.Flash[i].Multiplier = 1
		}
	}
	if sc.Samples <= 0 {
		sc.Samples = 16
	}
	if sc.TopK <= 0 {
		sc.TopK = 10
	}
	sc.SLO.normalize()
	return nil
}

// mixTable is a cumulative-weight lookup over endpoint names, ordered
// deterministically (sorted keys) so map iteration order can't leak
// into the plan.
type mixTable struct {
	names []string
	cum   []float64
}

func newMixTable(mix map[string]float64) mixTable {
	names := make([]string, 0, len(mix))
	for k, v := range mix {
		if v > 0 {
			names = append(names, k)
		}
	}
	sort.Strings(names)
	t := mixTable{names: names, cum: make([]float64, len(names))}
	total := 0.0
	for i, k := range names {
		total += mix[k]
		t.cum[i] = total
	}
	return t
}

func (t mixTable) pick(u float64) string {
	if len(t.names) == 0 {
		return ""
	}
	x := u * t.cum[len(t.cum)-1]
	for i, c := range t.cum {
		if x < c {
			return t.names[i]
		}
	}
	return t.names[len(t.names)-1]
}

// Load reads and validates a scenario file.
func Load(path string) (*Scenario, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var sc Scenario
	if err := json.Unmarshal(raw, &sc); err != nil {
		return nil, fmt.Errorf("scenario %s: %w", path, err)
	}
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	return &sc, nil
}

// Short is the seconds-scale smoke preset behind `make load-short`: a
// small community, mixed read/write traffic with churn and one flash
// window, one Sybil ring, and tight-but-achievable SLOs. Deterministic
// end to end.
func Short() *Scenario {
	sc := &Scenario{
		Name: "short",
		Seed: 1117,
		Community: Community{
			Agents: 300, Products: 400, Clusters: 6,
			MeanRatings: 8, MeanTrust: 7, PopularitySkew: 1.0,
		},
		Workload: Workload{
			Events:       4000,
			Concurrency:  8,
			Pacing:       "closed",
			ZipfS:        1.05,
			ReadFraction: 0.85,
			Churn:        Churn{TrustPerJoin: 2, RatingsPerJoin: 2},
			Flash:        []Flash{{StartFrac: 0.5, EndFrac: 0.65, Multiplier: 3, HotAgents: 5}},
		},
		Attacks: []attack.Spec{{
			Kind: attack.SybilRing, Count: 12, VictimIdx: 17, PushProducts: 3,
			MaxEnergyShare: 0.05, MaxRankPerturbation: 6, MaxPushedRate: 0.1,
		}},
		Samples: 24,
		TopK:    10,
		Warmup:  true,
		SLO: SLO{
			Default: Budget{P50MS: 50, P99MS: 400, P999MS: 1500, MaxErrorRate: 0.01},
			PerEndpoint: map[string]Budget{
				EpRecommendations: {P50MS: 80, P99MS: 600, P999MS: 2000, MaxErrorRate: 0.01},
				EpNeighbors:       {P50MS: 80, P99MS: 600, P999MS: 2000, MaxErrorRate: 0.01},
			},
		},
	}
	if err := sc.Validate(); err != nil {
		panic(err) // presets are code; a bad one is a programming error
	}
	return sc
}

// Full is the heavyweight preset behind `make load`: the 10⁵-agent
// community the tentpole calls for, all three attack kinds stacked, and
// relaxed latency budgets — the point at this scale is finding the next
// bottleneck, not meeting the small-community numbers.
//
// Sizing (see TestScaleProbe / TestPlanUniqueTargets): wall time is
// dominated by unique cold neighborhoods at ~0.36s each on the 1-core
// reference box, so events and skew are chosen to touch ~1.3k unique
// heavy-read agents (~10 min of cold work). Pacing is closed-loop:
// against a saturated box, open-loop latency measures executor backlog
// rather than the service, and a meaningful open-loop rate at this
// scale needs the sharded tier (ROADMAP item 2). Open pacing is still
// exercised by scenario files and the loadgen tests.
func Full() *Scenario {
	sc := &Scenario{
		Name: "full-1e5",
		Seed: 1229,
		Community: Community{
			Agents: 100_000, Products: 20_000, Clusters: 48,
			MeanRatings: 10, MeanTrust: 8, PopularitySkew: 1.0, Taxonomy: "book",
		},
		Workload: Workload{
			Events:       20_000,
			Concurrency:  16,
			Pacing:       "closed",
			ZipfS:        1.3,
			ReadFraction: 0.9,
			Churn:        Churn{TrustPerJoin: 3, RatingsPerJoin: 3},
			Flash: []Flash{
				{StartFrac: 0.4, EndFrac: 0.5, Multiplier: 4, HotAgents: 20},
			},
		},
		Attacks: []attack.Spec{
			{Kind: attack.SybilRing, Count: 64, VictimIdx: 1009, PushProducts: 5,
				MaxEnergyShare: 0.05, MaxRankPerturbation: 6, MaxPushedRate: 0.1},
			{Kind: attack.TrustSpamHub, Count: 64, VictimIdx: 2003, PushProducts: 5, FanoutTargets: 32,
				MaxEnergyShare: 0.01, MaxRankPerturbation: 4, MaxPushedRate: 0.05},
			{Kind: attack.ShillingClique, Count: 64, VictimIdx: 3001, PushProducts: 5,
				MaxEnergyShare: 0.01, MaxRankPerturbation: 4, MaxPushedRate: 0.05},
		},
		Samples: 32,
		TopK:    10,
		SLO: SLO{
			Default: Budget{P50MS: 200, P99MS: 2000, P999MS: 8000, MaxErrorRate: 0.02},
		},
	}
	if err := sc.Validate(); err != nil {
		panic(err)
	}
	return sc
}
