package loadgen

import (
	"context"
	"os"
	"testing"
	"time"

	"swrec/internal/ingest"
	"swrec/internal/wal"
)

// slowFile throttles WAL appends so the ingest queue backs up under
// churn — the fault-injection seam wal.Options.WrapFile exists for.
type slowFile struct {
	f *os.File
}

func (s slowFile) Write(p []byte) (int, error) {
	time.Sleep(2 * time.Millisecond)
	return s.f.Write(p)
}
func (s slowFile) Seek(offset int64, whence int) (int64, error) { return s.f.Seek(offset, whence) }
func (s slowFile) Truncate(size int64) error                    { return s.f.Truncate(size) }
func (s slowFile) Sync() error                                  { return s.f.Sync() }
func (s slowFile) Close() error                                 { return s.f.Close() }

// churnScenario is write-heavy: sustained joins, trust edits, and
// retractions from many workers against a deliberately tiny queue.
func churnScenario() *Scenario {
	sc := &Scenario{
		Name: "churn-overload",
		Seed: 23,
		Community: Community{
			Agents: 80, Products: 100, Clusters: 4, MeanRatings: 5, MeanTrust: 4,
		},
		Workload: Workload{
			Events: 600, Concurrency: 8, ZipfS: 0.8, ReadFraction: 0.05,
			Churn: Churn{TrustPerJoin: 3, RatingsPerJoin: 2},
		},
		Samples: 4,
		TopK:    5,
	}
	if err := sc.Validate(); err != nil {
		panic(err)
	}
	return sc
}

// TestOverloadRetryAfterBand drives sustained churn into a 2-deep
// ingest queue behind a throttled WAL and asserts the documented
// overload contract: 503s carry Retry-After within the 1–8s band, and
// every write that was acked with a WAL sequence number is still there
// after a crash and restart mid-scenario.
func TestOverloadRetryAfterBand(t *testing.T) {
	sc := churnScenario()
	walDir := t.TempDir()
	ctx := context.Background()
	cfg := ingest.Config{
		QueueSize: 2, BatchSize: 1,
		SnapshotEvery: 1 << 30, SnapshotInterval: time.Hour, // manual control only
		WAL: wal.Options{WrapFile: func(f *os.File) wal.File { return slowFile{f: f} }},
	}
	p, err := BuildInProc(ctx, sc, walDir, cfg)
	if err != nil {
		t.Fatal(err)
	}

	plan := Plan(sc)
	half := len(plan) / 2
	runner := &Runner{Scenario: sc, Plan: plan[:half], Resolver: p.Resolver, Target: HandlerTarget{Handler: p.Handler}}
	res, err := runner.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}

	if res.Overloaded == 0 {
		t.Fatal("no 503 despite 8 workers against a 2-deep queue on a throttled WAL")
	}
	if res.RetryAfterMin < 1 || res.RetryAfterMax > 8 {
		t.Fatalf("Retry-After outside documented 1–8s band: min=%d max=%d",
			res.RetryAfterMin, res.RetryAfterMax)
	}
	if len(res.Acked) == 0 {
		t.Fatal("nothing was acked; overload test needs surviving writes to verify")
	}

	// Crash mid-scenario: no checkpoint, no flush — durability must come
	// from the WAL alone.
	var maxSeq uint64
	for _, a := range res.Acked {
		if a.Seq > maxSeq {
			maxSeq = a.Seq
		}
	}
	p.Pipeline.Abort()

	// Restart: regenerate the same base community and replay the WAL.
	p2, err := BuildInProc(ctx, sc, walDir, ingest.Config{
		SnapshotEvery: 1 << 30, SnapshotInterval: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p2.Close()
	if _, seq := p2.Pipeline.Applied(); seq < maxSeq {
		t.Fatalf("replay stopped at seq %d, but seq %d was acked before the crash", seq, maxSeq)
	}

	// Every acked join must be visible to reads after restart.
	snapComm := p2.Engine.Snapshot().Community()
	verified := 0
	for _, a := range res.Acked {
		ev := plan[a.EventIdx]
		if ev.Endpoint != EpWriteJoin {
			continue
		}
		id := p2.Resolver.JoinerID(joinerOrdinal(ev.Agent))
		if snapComm.Agent(id) == nil {
			t.Fatalf("join of %s was acked (seq %d) but is gone after restart", id, a.Seq)
		}
		verified++
	}
	if verified == 0 {
		t.Fatal("no join was acked in the first half; scenario too small to verify survival")
	}

	// The second half of the scenario continues against the restarted
	// server — the same deterministic plan, new process.
	runner2 := &Runner{Scenario: sc, Plan: plan[half:], Resolver: p2.Resolver, Target: HandlerTarget{Handler: p2.Handler}}
	res2, err := runner2.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Completed != len(plan)-half {
		t.Fatalf("post-restart half completed %d of %d", res2.Completed, len(plan)-half)
	}
	for _, v := range sc.SLO.Check(res2) {
		t.Errorf("post-restart SLO violation: %s", v)
	}
}
