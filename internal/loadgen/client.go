package loadgen

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"

	"swrec/internal/core"
	"swrec/internal/model"
)

// Target abstracts where the traffic lands: an in-process handler
// (hermetic runs, tests) or a live server over TCP. Implementations
// must be safe for concurrent use.
type Target interface {
	// Do issues one request and returns the status code, response body,
	// and the Retry-After header value if present ("" otherwise).
	Do(method, path string, body []byte) (status int, resp []byte, retryAfter string, err error)
}

// HandlerTarget drives an http.Handler directly — no sockets, no
// client-side queueing, so latency is the handler's service time.
type HandlerTarget struct {
	Handler http.Handler
}

// respBuf is a minimal ResponseWriter; httptest's recorder would do,
// but pulling a testing-flavored package into the production harness
// path for 30 lines isn't worth it.
type respBuf struct {
	hdr  http.Header
	code int
	buf  bytes.Buffer
}

func (r *respBuf) Header() http.Header { return r.hdr }
func (r *respBuf) WriteHeader(c int)   { r.code = c }
func (r *respBuf) Write(p []byte) (int, error) {
	if r.code == 0 {
		r.code = http.StatusOK
	}
	return r.buf.Write(p)
}

func (t HandlerTarget) Do(method, path string, body []byte) (int, []byte, string, error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequest(method, "http://in-process"+path, rd)
	if err != nil {
		return 0, nil, "", err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	w := &respBuf{hdr: make(http.Header)}
	t.Handler.ServeHTTP(w, req)
	if w.code == 0 {
		w.code = http.StatusOK
	}
	return w.code, w.buf.Bytes(), w.hdr.Get("Retry-After"), nil
}

// HTTPTarget drives a live server. Base is e.g. "http://127.0.0.1:8080".
type HTTPTarget struct {
	Base   string
	Client *http.Client
}

func (t HTTPTarget) Do(method, path string, body []byte) (int, []byte, string, error) {
	cl := t.Client
	if cl == nil {
		cl = http.DefaultClient
	}
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequest(method, strings.TrimRight(t.Base, "/")+path, rd)
	if err != nil {
		return 0, nil, "", err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := cl.Do(req)
	if err != nil {
		return 0, nil, "", err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 4<<20))
	if err != nil {
		return resp.StatusCode, nil, "", err
	}
	return resp.StatusCode, data, resp.Header.Get("Retry-After"), nil
}

// Resolver maps the plan's index space onto concrete IDs. It holds
// plain ID slices — never the community itself — so nothing here pins
// an epoch (snapshotpin) and a resolver stays valid across swaps.
type Resolver struct {
	AgentIDs   []model.AgentID
	ProductIDs []model.ProductID
	TopicPaths []string
	BaseHost   string
}

// JoinerID names the ordinal-th churn joiner. Deterministic, so a
// restarted run resolves the same identities.
func (r *Resolver) JoinerID(ordinal int) model.AgentID {
	return model.AgentID(fmt.Sprintf("http://%s/people/j%d", r.BaseHost, ordinal))
}

// AgentRef resolves a plan agent reference.
func (r *Resolver) AgentRef(ref int) model.AgentID {
	if j := joinerOrdinal(ref); j >= 0 {
		return r.JoinerID(j)
	}
	return r.AgentIDs[ref%len(r.AgentIDs)]
}

func agentPath(id model.AgentID, suffix string) string {
	return "/v1/agents/" + url.PathEscape(string(id)) + suffix
}

// Request materializes one planned event into an HTTP request triple.
func (r *Resolver) Request(ev *Event) (method, path string, body []byte) {
	switch ev.Endpoint {
	case EpRecommendations:
		return http.MethodGet, agentPath(r.AgentRef(ev.Agent), fmt.Sprintf("/recommendations?n=%d", ev.N)), nil
	case EpNeighbors:
		return http.MethodGet, agentPath(r.AgentRef(ev.Agent), fmt.Sprintf("/neighbors?n=%d", ev.N)), nil
	case EpProfile:
		return http.MethodGet, agentPath(r.AgentRef(ev.Agent), "/profile"), nil
	case EpAgent:
		return http.MethodGet, agentPath(r.AgentRef(ev.Agent), ""), nil
	case EpAgents:
		return http.MethodGet, fmt.Sprintf("/v1/agents?offset=%d&limit=%d", ev.Offset, ev.N), nil
	case EpProduct:
		p := r.ProductIDs[ev.Product%len(r.ProductIDs)]
		return http.MethodGet, "/v1/products/" + url.PathEscape(string(p)), nil
	case EpTopic:
		if len(r.TopicPaths) == 0 {
			return http.MethodGet, "/v1/stats", nil
		}
		tp := r.TopicPaths[ev.Topic%len(r.TopicPaths)]
		return http.MethodGet, "/v1/topics/" + url.PathEscape(tp), nil
	case EpStats:
		return http.MethodGet, "/v1/stats", nil
	case EpWriteJoin:
		j := joinerOrdinal(ev.Agent)
		b, _ := json.Marshal(map[string]any{
			"id": r.JoinerID(j), "name": fmt.Sprintf("joiner %d", j),
		})
		return http.MethodPost, "/v1/agents", b
	case EpWriteTrust:
		b, _ := json.Marshal(map[string]any{
			"peer": r.AgentRef(ev.Peer), "value": ev.Value,
		})
		return http.MethodPost, agentPath(r.AgentRef(ev.Agent), "/trust"), b
	case EpWriteRating:
		p := r.ProductIDs[ev.Product%len(r.ProductIDs)]
		b, _ := json.Marshal(map[string]any{"product": p, "value": ev.Value})
		return http.MethodPost, agentPath(r.AgentRef(ev.Agent), "/ratings"), b
	case EpWriteLeave:
		if ev.Peer != -1 {
			return http.MethodDelete,
				agentPath(r.AgentRef(ev.Agent), "/trust") + "?peer=" + url.QueryEscape(string(r.AgentRef(ev.Peer))), nil
		}
		p := r.ProductIDs[ev.Product%len(r.ProductIDs)]
		return http.MethodDelete,
			agentPath(r.AgentRef(ev.Agent), "/ratings") + "?product=" + url.QueryEscape(string(p)), nil
	default:
		return http.MethodGet, "/v1/healthz", nil
	}
}

// Client wraps a Target with the typed reads the attack-confinement
// measures need (it satisfies attack.Client).
type Client struct {
	T Target
	// Query is appended to every read as extra query parameters.
	// The confinement measures use "alpha=1" to pin pure trust
	// weighting, isolating the paper's trust-gating claim from the
	// serving default's similarity blend.
	Query string
}

func (c Client) withQuery(path string) string {
	if c.Query == "" {
		return path
	}
	return path + "&" + c.Query
}

type pageOf[T any] struct {
	Items []T `json:"items"`
}

func getList[T any](t Target, path string) ([]T, error) {
	status, body, _, err := t.Do(http.MethodGet, path, nil)
	if err != nil {
		return nil, err
	}
	if status != http.StatusOK {
		return nil, fmt.Errorf("GET %s: status %d: %s", path, status, truncate(body, 200))
	}
	var pg pageOf[T]
	if err := json.Unmarshal(body, &pg); err != nil {
		return nil, fmt.Errorf("GET %s: %w", path, err)
	}
	return pg.Items, nil
}

func truncate(b []byte, n int) string {
	if len(b) > n {
		b = b[:n]
	}
	return string(b)
}

// Neighbors fetches the ranked trust neighborhood (n=0 means all).
func (c Client) Neighbors(id model.AgentID, n int) ([]core.PeerRank, error) {
	return getList[core.PeerRank](c.T, c.withQuery(agentPath(id, fmt.Sprintf("/neighbors?n=%d", n))))
}

// Recommendations fetches the agent's top-n recommendations.
func (c Client) Recommendations(id model.AgentID, n int) ([]core.Recommendation, error) {
	return getList[core.Recommendation](c.T, c.withQuery(agentPath(id, fmt.Sprintf("/recommendations?n=%d", n))))
}
