// Package foaf implements the document formats of the paper's deployment
// architecture (§4): machine-readable agent homepages in the spirit of
// FOAF ("Friend of a Friend" [4]) extended with "real" trust relationships
// following Golbeck's proposal, plus product rating statements in the
// style of BLAM!-annotated weblogs — and the globally accessible catalog
// and taxonomy documents of §3.1.
//
// All documents are RDF graphs (package rdf) serialized as N-Triples.
// Trust and rating statements carry continuous values in [-1,+1] and are
// reified through blank nodes, since RDF properties cannot carry edge
// weights directly:
//
//	<alice> foaf:name "Alice" .
//	<alice> rdf:type foaf:Person .
//	<alice> swt:trusts _:t0 .
//	_:t0 swt:agent <bob> .
//	_:t0 swt:value "0.9"^^xsd:decimal .
//	<alice> swt:rates _:r0 .
//	_:r0 swt:product <urn:isbn:9782000000012> .
//	_:r0 swt:value "0.75"^^xsd:decimal .
package foaf

import (
	"errors"
	"fmt"
	"strconv"

	"swrec/internal/model"
	"swrec/internal/rdf"
)

// Vocabulary IRIs. The foaf: and rdf: terms are the standard ones; swt:
// is this system's trust/rating extension namespace.
const (
	RDFType    = "http://www.w3.org/1999/02/22-rdf-syntax-ns#type"
	FOAFPerson = "http://xmlns.com/foaf/0.1/Person"
	FOAFName   = "http://xmlns.com/foaf/0.1/name"
	FOAFKnows  = "http://xmlns.com/foaf/0.1/knows"

	SWTNS      = "http://swrec.org/ont/trust#"
	SWTTrusts  = SWTNS + "trusts"
	SWTRates   = SWTNS + "rates"
	SWTAgent   = SWTNS + "agent"
	SWTProduct = SWTNS + "product"
	SWTValue   = SWTNS + "value"
)

var (
	// ErrNoAgent is returned when a document contains no foaf:Person.
	ErrNoAgent = errors.New("foaf: document declares no foaf:Person")
	// ErrMalformed wraps structural errors in homepage documents.
	ErrMalformed = errors.New("foaf: malformed document")
)

// Homepage is the logical content of one agent's machine-readable
// homepage: identity, direct trust statements, and product ratings.
type Homepage struct {
	Agent   model.AgentID
	Name    string
	Trust   []model.TrustStatement
	Ratings []model.RatingStatement
}

// Marshal renders the homepage as an RDF graph. Statement order is
// preserved, blank node labels are deterministic (t0, t1, ..., r0, r1,
// ...), so output is byte-stable for identical input.
func Marshal(h Homepage) *rdf.Graph {
	g := rdf.NewGraph()
	me := rdf.NewIRI(string(h.Agent))
	g.Add(rdf.Triple{Subject: me, Predicate: rdf.NewIRI(RDFType), Object: rdf.NewIRI(FOAFPerson)})
	if h.Name != "" {
		g.Add(rdf.Triple{Subject: me, Predicate: rdf.NewIRI(FOAFName), Object: rdf.NewLiteral(h.Name)})
	}
	for i, st := range h.Trust {
		node := rdf.NewBlank("t" + strconv.Itoa(i))
		g.Add(rdf.Triple{Subject: me, Predicate: rdf.NewIRI(SWTTrusts), Object: node})
		g.Add(rdf.Triple{Subject: node, Predicate: rdf.NewIRI(SWTAgent), Object: rdf.NewIRI(string(st.Dst))})
		g.Add(rdf.Triple{Subject: node, Predicate: rdf.NewIRI(SWTValue), Object: decimal(st.Value)})
		// Positive trust also asserts plain FOAF acquaintance, keeping the
		// document consumable by vanilla FOAF crawlers.
		if st.Value > 0 {
			g.Add(rdf.Triple{Subject: me, Predicate: rdf.NewIRI(FOAFKnows), Object: rdf.NewIRI(string(st.Dst))})
		}
	}
	for i, st := range h.Ratings {
		node := rdf.NewBlank("r" + strconv.Itoa(i))
		g.Add(rdf.Triple{Subject: me, Predicate: rdf.NewIRI(SWTRates), Object: node})
		g.Add(rdf.Triple{Subject: node, Predicate: rdf.NewIRI(SWTProduct), Object: rdf.NewIRI(string(st.Product))})
		g.Add(rdf.Triple{Subject: node, Predicate: rdf.NewIRI(SWTValue), Object: decimal(st.Value)})
	}
	return g
}

// MarshalAgent builds the homepage of agent a as stored in a community.
func MarshalAgent(a *model.Agent) *rdf.Graph {
	return Marshal(Homepage{
		Agent:   a.ID,
		Name:    a.Name,
		Trust:   a.TrustedPeers(),
		Ratings: a.RatedProducts(),
	})
}

// Unmarshal extracts the homepage from an RDF graph. The agent is
// identified as the (single expected) subject typed foaf:Person; if
// several are typed, the first in subject order wins (Semantic Web
// documents may legally mention many people; the homepage's own person is
// by convention declared first).
func Unmarshal(g *rdf.Graph) (Homepage, error) {
	typ, person := rdf.NewIRI(RDFType), rdf.NewIRI(FOAFPerson)
	var me rdf.Term
	found := false
	for _, tr := range g.Triples() {
		if tr.Predicate == typ && tr.Object == person && tr.Subject.Kind == rdf.IRI {
			me = tr.Subject
			found = true
			break
		}
	}
	if !found {
		return Homepage{}, ErrNoAgent
	}
	h := Homepage{Agent: model.AgentID(me.Value)}
	if names := g.Objects(me.Value, FOAFName); len(names) > 0 {
		h.Name = names[0].Value
	}
	for _, node := range g.Objects(me.Value, SWTTrusts) {
		dst, v, err := reified(g, node, SWTAgent)
		if err != nil {
			return Homepage{}, fmt.Errorf("trust statement: %w", err)
		}
		h.Trust = append(h.Trust, model.TrustStatement{
			Src: h.Agent, Dst: model.AgentID(dst), Value: v,
		})
	}
	for _, node := range g.Objects(me.Value, SWTRates) {
		prod, v, err := reified(g, node, SWTProduct)
		if err != nil {
			return Homepage{}, fmt.Errorf("rating statement: %w", err)
		}
		h.Ratings = append(h.Ratings, model.RatingStatement{
			Agent: h.Agent, Product: model.ProductID(prod), Value: v,
		})
	}
	return h, nil
}

// ApplyTo merges the homepage's statements into a community view,
// registering bare catalog entries for rated-but-unknown products.
func (h Homepage) ApplyTo(c *model.Community) error {
	a := c.AddAgent(h.Agent)
	if h.Name != "" {
		a.Name = h.Name
	}
	for _, st := range h.Trust {
		if err := c.SetTrust(h.Agent, st.Dst, st.Value); err != nil {
			return err
		}
	}
	for _, st := range h.Ratings {
		if c.Product(st.Product) == nil {
			c.AddProduct(model.Product{ID: st.Product})
		}
		if err := c.SetRating(h.Agent, st.Product, st.Value); err != nil {
			return err
		}
	}
	return nil
}

// reified reads one reification node: its target (under targetPred) and
// its swt:value.
func reified(g *rdf.Graph, node rdf.Term, targetPred string) (target string, value float64, err error) {
	var targets, values []rdf.Term
	tp, vp := rdf.NewIRI(targetPred), rdf.NewIRI(SWTValue)
	for _, tr := range g.Match(&node, &tp, nil) {
		targets = append(targets, tr.Object)
	}
	for _, tr := range g.Match(&node, &vp, nil) {
		values = append(values, tr.Object)
	}
	if len(targets) != 1 || len(values) != 1 {
		return "", 0, fmt.Errorf("%w: node %s needs exactly one target and one value",
			ErrMalformed, node)
	}
	if targets[0].Kind != rdf.IRI {
		return "", 0, fmt.Errorf("%w: target must be an IRI, got %s", ErrMalformed, targets[0])
	}
	v, perr := strconv.ParseFloat(values[0].Value, 64)
	if perr != nil {
		return "", 0, fmt.Errorf("%w: bad decimal %q", ErrMalformed, values[0].Value)
	}
	if v < model.MinValue || v > model.MaxValue {
		return "", 0, fmt.Errorf("%w: value %v outside [-1,+1]", ErrMalformed, v)
	}
	return targets[0].Value, v, nil
}

// decimal renders v as an xsd:decimal literal.
func decimal(v float64) rdf.Term {
	return rdf.NewTypedLiteral(strconv.FormatFloat(v, 'f', -1, 64), rdf.XSDDecimal)
}
