package foaf

import (
	"errors"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"swrec/internal/model"
	"swrec/internal/rdf"
	"swrec/internal/taxonomy"
)

func sampleHomepage() Homepage {
	return Homepage{
		Agent: "http://x/people/alice",
		Name:  "Alice",
		Trust: []model.TrustStatement{
			{Src: "http://x/people/alice", Dst: "http://x/people/bob", Value: 0.9},
			{Src: "http://x/people/alice", Dst: "http://x/people/carol", Value: -0.5},
		},
		Ratings: []model.RatingStatement{
			{Agent: "http://x/people/alice", Product: "urn:isbn:9782000000012", Value: 1},
			{Agent: "http://x/people/alice", Product: "urn:isbn:9782000000029", Value: -0.25},
		},
	}
}

func TestMarshalUnmarshalRoundTrip(t *testing.T) {
	h := sampleHomepage()
	g := Marshal(h)
	back, err := Unmarshal(g)
	if err != nil {
		t.Fatal(err)
	}
	if back.Agent != h.Agent || back.Name != h.Name {
		t.Fatalf("identity lost: %+v", back)
	}
	if len(back.Trust) != 2 || len(back.Ratings) != 2 {
		t.Fatalf("statements lost: %+v", back)
	}
	for i := range h.Trust {
		if back.Trust[i] != h.Trust[i] {
			t.Fatalf("trust %d: %+v != %+v", i, back.Trust[i], h.Trust[i])
		}
	}
	for i := range h.Ratings {
		if back.Ratings[i] != h.Ratings[i] {
			t.Fatalf("rating %d: %+v != %+v", i, back.Ratings[i], h.Ratings[i])
		}
	}
}

func TestMarshalWireRoundTrip(t *testing.T) {
	// Full serialize → N-Triples text → parse → extract path, as the
	// crawler does it.
	h := sampleHomepage()
	text := Marshal(h).Marshal()
	g, err := rdf.ParseString(text)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Unmarshal(g)
	if err != nil {
		t.Fatal(err)
	}
	if back.Agent != h.Agent || len(back.Trust) != 2 || len(back.Ratings) != 2 {
		t.Fatalf("wire round trip lost data: %+v", back)
	}
	// Positive trust also emits vanilla foaf:knows for plain crawlers.
	if !strings.Contains(text, FOAFKnows) {
		t.Fatal("foaf:knows missing for positive trust")
	}
	if strings.Count(text, FOAFKnows) != 1 {
		t.Fatal("distrust must not assert foaf:knows")
	}
}

func TestMarshalDeterministic(t *testing.T) {
	h := sampleHomepage()
	if Marshal(h).Marshal() != Marshal(h).Marshal() {
		t.Fatal("Marshal is not byte-stable")
	}
}

func TestUnmarshalErrors(t *testing.T) {
	// No foaf:Person at all.
	g := rdf.NewGraph()
	g.AddIRI("http://x/a", "http://x/p", "http://x/b")
	if _, err := Unmarshal(g); !errors.Is(err, ErrNoAgent) {
		t.Fatalf("got %v, want ErrNoAgent", err)
	}

	// Trust node missing its value.
	doc := `<http://x/a> <` + RDFType + `> <` + FOAFPerson + `> .
<http://x/a> <` + SWTTrusts + `> _:t0 .
_:t0 <` + SWTAgent + `> <http://x/b> .
`
	g2, err := rdf.ParseString(doc)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Unmarshal(g2); !errors.Is(err, ErrMalformed) {
		t.Fatalf("got %v, want ErrMalformed", err)
	}

	// Value out of range.
	doc3 := `<http://x/a> <` + RDFType + `> <` + FOAFPerson + `> .
<http://x/a> <` + SWTRates + `> _:r0 .
_:r0 <` + SWTProduct + `> <urn:isbn:1> .
_:r0 <` + SWTValue + `> "7"^^<` + rdf.XSDDecimal + `> .
`
	g3, err := rdf.ParseString(doc3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Unmarshal(g3); !errors.Is(err, ErrMalformed) {
		t.Fatalf("got %v, want ErrMalformed", err)
	}

	// Non-numeric value.
	doc4 := strings.Replace(doc3, `"7"`, `"high"`, 1)
	g4, err := rdf.ParseString(doc4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Unmarshal(g4); !errors.Is(err, ErrMalformed) {
		t.Fatalf("got %v, want ErrMalformed", err)
	}
}

func TestApplyTo(t *testing.T) {
	h := sampleHomepage()
	c := model.NewCommunity(nil)
	if err := h.ApplyTo(c); err != nil {
		t.Fatal(err)
	}
	if v, ok := c.Trust(h.Agent, "http://x/people/bob"); !ok || v != 0.9 {
		t.Fatalf("trust not applied: %v,%v", v, ok)
	}
	if v, ok := c.Rating(h.Agent, "urn:isbn:9782000000012"); !ok || v != 1 {
		t.Fatalf("rating not applied: %v,%v", v, ok)
	}
	// Rated products got bare catalog entries.
	if c.Product("urn:isbn:9782000000029") == nil {
		t.Fatal("rated product missing from catalog")
	}
	if c.Agent(h.Agent).Name != "Alice" {
		t.Fatal("name not applied")
	}
}

func TestMarshalAgent(t *testing.T) {
	c := model.NewCommunity(nil)
	c.AddProduct(model.Product{ID: "urn:isbn:9782000000012"})
	if err := c.SetTrust("http://x/a", "http://x/b", 0.7); err != nil {
		t.Fatal(err)
	}
	if err := c.SetRating("http://x/a", "urn:isbn:9782000000012", 0.6); err != nil {
		t.Fatal(err)
	}
	c.Agent("http://x/a").Name = "A"
	g := MarshalAgent(c.Agent("http://x/a"))
	back, err := Unmarshal(g)
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != "A" || len(back.Trust) != 1 || len(back.Ratings) != 1 {
		t.Fatalf("MarshalAgent round trip = %+v", back)
	}
}

func TestTaxonomyRoundTrip(t *testing.T) {
	tax := taxonomy.Fig1()
	// Add a secondary parent edge to exercise DAG serialization.
	ml := tax.MustAdd(taxonomy.Root, "Computers")
	alg, _ := tax.Lookup("Books/Science/Mathematics/Pure/Algebra")
	if err := tax.AddEdge(ml, alg); err != nil {
		t.Fatal(err)
	}

	g := MarshalTaxonomy(tax)
	text := g.Marshal()
	g2, err := rdf.ParseString(text)
	if err != nil {
		t.Fatal(err)
	}
	back, err := UnmarshalTaxonomy(g2)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != tax.Len() {
		t.Fatalf("taxonomy round trip Len = %d, want %d", back.Len(), tax.Len())
	}
	for _, d := range tax.Topics() {
		q := tax.QualifiedName(d)
		bd, ok := back.Lookup(q)
		if !ok {
			t.Fatalf("topic %q missing after round trip", q)
		}
		if back.Siblings(bd) != tax.Siblings(d) {
			t.Fatalf("sibling count changed for %q", q)
		}
	}
	// Secondary parent preserved.
	balg, _ := back.Lookup("Books/Science/Mathematics/Pure/Algebra")
	if got := len(back.Parents(balg)); got != 2 {
		t.Fatalf("Algebra parents = %d, want 2", got)
	}
}

func TestUnmarshalTaxonomyErrors(t *testing.T) {
	g := rdf.NewGraph()
	if _, err := UnmarshalTaxonomy(g); !errors.Is(err, ErrMalformed) {
		t.Fatalf("empty doc: got %v, want ErrMalformed", err)
	}
	doc := `<` + SWCTaxonomyIRI + `> <` + SWCRootName + `> "Books" .
<` + SWCTaxonomyIRI + `> <` + SWCExtraParent + `> "garbage" .
`
	g2, err := rdf.ParseString(doc)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := UnmarshalTaxonomy(g2); !errors.Is(err, ErrMalformed) {
		t.Fatalf("bad extra parent: got %v, want ErrMalformed", err)
	}
}

func TestCatalogRoundTrip(t *testing.T) {
	tax := taxonomy.Fig1()
	alg, _ := tax.Lookup("Books/Science/Mathematics/Pure/Algebra")
	fic, _ := tax.Lookup("Books/Fiction")
	c := model.NewCommunity(tax)
	c.AddProduct(model.Product{
		ID: "urn:isbn:9780521386326", Title: "Matrix Analysis",
		ISBN: "9780521386326", Topics: []taxonomy.Topic{alg, fic},
	})
	c.AddProduct(model.Product{ID: "urn:isbn:9780553380958", Title: "Snow Crash",
		Topics: []taxonomy.Topic{fic}})

	text := MarshalCatalog(c).Marshal()
	g, err := rdf.ParseString(text)
	if err != nil {
		t.Fatal(err)
	}
	dst := model.NewCommunity(tax)
	if err := UnmarshalCatalog(g, dst); err != nil {
		t.Fatal(err)
	}
	if dst.NumProducts() != 2 {
		t.Fatalf("NumProducts = %d, want 2", dst.NumProducts())
	}
	p := dst.Product("urn:isbn:9780521386326")
	if p == nil || p.Title != "Matrix Analysis" || p.ISBN != "9780521386326" {
		t.Fatalf("product metadata lost: %+v", p)
	}
	if len(p.Topics) != 2 || p.Topics[0] != alg || p.Topics[1] != fic {
		t.Fatalf("topics lost: %+v", p.Topics)
	}
}

func TestUnmarshalCatalogUnknownTopic(t *testing.T) {
	doc := `<urn:isbn:1> <` + RDFType + `> <` + SWCProduct + `> .
<urn:isbn:1> <` + SWCTopic + `> "Nonexistent/Topic" .
`
	g, err := rdf.ParseString(doc)
	if err != nil {
		t.Fatal(err)
	}
	c := model.NewCommunity(taxonomy.Fig1())
	if err := UnmarshalCatalog(g, c); !errors.Is(err, ErrMalformed) {
		t.Fatalf("got %v, want ErrMalformed", err)
	}
	bare := model.NewCommunity(nil)
	if err := UnmarshalCatalog(g, bare); !errors.Is(err, ErrMalformed) {
		t.Fatalf("taxonomy-less community: got %v, want ErrMalformed", err)
	}
}

// Property: random homepages survive the full wire round trip.
func TestHomepageRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		h := Homepage{Agent: model.AgentID("http://x/a" + itoa(int(seed&0xff)))}
		if rng.Intn(2) == 0 {
			h.Name = "Agent " + itoa(rng.Intn(1000))
		}
		for i := 0; i < rng.Intn(6); i++ {
			h.Trust = append(h.Trust, model.TrustStatement{
				Src: h.Agent, Dst: model.AgentID("http://x/p" + itoa(i)),
				Value: float64(rng.Intn(2001)-1000) / 1000,
			})
		}
		for i := 0; i < rng.Intn(6); i++ {
			h.Ratings = append(h.Ratings, model.RatingStatement{
				Agent: h.Agent, Product: model.ProductID("urn:isbn:" + itoa(i)),
				Value: float64(rng.Intn(2001)-1000) / 1000,
			})
		}
		g, err := rdf.ParseString(Marshal(h).Marshal())
		if err != nil {
			return false
		}
		back, err := Unmarshal(g)
		if err != nil {
			return false
		}
		if back.Agent != h.Agent || back.Name != h.Name ||
			len(back.Trust) != len(h.Trust) || len(back.Ratings) != len(h.Ratings) {
			return false
		}
		for i := range h.Trust {
			if back.Trust[i] != h.Trust[i] {
				return false
			}
		}
		for i := range h.Ratings {
			if back.Ratings[i] != h.Ratings[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestFormatValue(t *testing.T) {
	if formatValue(0.5) != "0.5" || formatValue(-1) != "-1" {
		t.Fatal("formatValue broken")
	}
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	neg := i < 0
	if neg {
		i = -i
	}
	var b []byte
	for i > 0 {
		b = append([]byte{byte('0' + i%10)}, b...)
		i /= 10
	}
	if neg {
		return "-" + string(b)
	}
	return string(b)
}
