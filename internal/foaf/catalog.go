package foaf

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"swrec/internal/model"
	"swrec/internal/rdf"
	"swrec/internal/taxonomy"
)

// Catalog and taxonomy documents: the globally accessible part of the
// information model (§3.1 — "taxonomy C, set B of products and descriptor
// assignment function f must hold globally and therefore offer public
// accessibility"; §4 — Amazon's book taxonomy and subject descriptors).
//
// Topics are referenced by their qualified path below the root, carried as
// literals: taxonomies of 20,000+ topics serialize compactly and rebuild
// deterministically. Secondary (DAG) parent edges are carried explicitly.
const (
	DCTitle = "http://purl.org/dc/elements/1.1/title"

	SWCNS          = "http://swrec.org/ont/catalog#"
	SWCProduct     = SWCNS + "Product"
	SWCISBN        = SWCNS + "isbn"
	SWCTopic       = SWCNS + "topic" // qualified path below root
	SWCTaxonomy    = SWCNS + "Taxonomy"
	SWCRootName    = SWCNS + "rootName"
	SWCTopicPath   = SWCNS + "topicPath"
	SWCExtraParent = SWCNS + "extraParent"
	// SWCTaxonomyIRI is the subject the taxonomy document hangs off.
	SWCTaxonomyIRI = "http://swrec.org/catalog/taxonomy"
)

// MarshalTaxonomy renders the full taxonomy as one RDF document: the root
// name, one swc:topicPath literal per non-root topic (depth-first order,
// so parents precede children), and swc:extraParent statements for
// secondary DAG edges.
func MarshalTaxonomy(tax *taxonomy.Taxonomy) *rdf.Graph {
	g := rdf.NewGraph()
	doc := rdf.NewIRI(SWCTaxonomyIRI)
	g.Add(rdf.Triple{Subject: doc, Predicate: rdf.NewIRI(RDFType), Object: rdf.NewIRI(SWCTaxonomy)})
	g.Add(rdf.Triple{Subject: doc, Predicate: rdf.NewIRI(SWCRootName), Object: rdf.NewLiteral(tax.Name(taxonomy.Root))})
	rootPrefix := tax.Name(taxonomy.Root) + "/"
	tax.Walk(func(d taxonomy.Topic, _ int) bool {
		if d == taxonomy.Root {
			return true
		}
		path := strings.TrimPrefix(tax.QualifiedName(d), rootPrefix)
		g.Add(rdf.Triple{Subject: doc, Predicate: rdf.NewIRI(SWCTopicPath), Object: rdf.NewLiteral(path)})
		parents := tax.Parents(d)
		for _, p := range parents[1:] { // secondary edges only
			pp := strings.TrimPrefix(tax.QualifiedName(p), rootPrefix)
			if p == taxonomy.Root {
				pp = ""
			}
			g.Add(rdf.Triple{
				Subject:   doc,
				Predicate: rdf.NewIRI(SWCExtraParent),
				Object:    rdf.NewLiteral(pp + "->" + path),
			})
		}
		return true
	})
	return g
}

// UnmarshalTaxonomy rebuilds a taxonomy from its RDF document.
func UnmarshalTaxonomy(g *rdf.Graph) (*taxonomy.Taxonomy, error) {
	roots := g.Objects(SWCTaxonomyIRI, SWCRootName)
	if len(roots) != 1 {
		return nil, fmt.Errorf("%w: need exactly one root name, got %d", ErrMalformed, len(roots))
	}
	tax := taxonomy.New(roots[0].Value)
	for _, o := range g.Objects(SWCTaxonomyIRI, SWCTopicPath) {
		if _, err := tax.AddPath(o.Value); err != nil {
			return nil, fmt.Errorf("%w: topic path %q: %v", ErrMalformed, o.Value, err)
		}
	}
	for _, o := range g.Objects(SWCTaxonomyIRI, SWCExtraParent) {
		parentPath, childPath, ok := strings.Cut(o.Value, "->")
		if !ok {
			return nil, fmt.Errorf("%w: extra parent %q", ErrMalformed, o.Value)
		}
		parent := taxonomy.Root
		if parentPath != "" {
			p, ok := tax.Lookup(roots[0].Value + "/" + parentPath)
			if !ok {
				return nil, fmt.Errorf("%w: unknown extra parent %q", ErrMalformed, parentPath)
			}
			parent = p
		}
		child, ok := tax.Lookup(roots[0].Value + "/" + childPath)
		if !ok {
			return nil, fmt.Errorf("%w: unknown extra-parent child %q", ErrMalformed, childPath)
		}
		if err := tax.AddEdge(parent, child); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrMalformed, err)
		}
	}
	return tax, nil
}

// MarshalCatalog renders the product catalog against its taxonomy.
// Descriptors are emitted as qualified topic paths below the root.
func MarshalCatalog(c *model.Community) *rdf.Graph {
	g := rdf.NewGraph()
	tax := c.Taxonomy()
	rootPrefix := ""
	if tax != nil {
		rootPrefix = tax.Name(taxonomy.Root) + "/"
	}
	ids := append([]model.ProductID(nil), c.Products()...)
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		p := c.Product(id)
		subj := rdf.NewIRI(string(p.ID))
		g.Add(rdf.Triple{Subject: subj, Predicate: rdf.NewIRI(RDFType), Object: rdf.NewIRI(SWCProduct)})
		if p.Title != "" {
			g.Add(rdf.Triple{Subject: subj, Predicate: rdf.NewIRI(DCTitle), Object: rdf.NewLiteral(p.Title)})
		}
		if p.ISBN != "" {
			g.Add(rdf.Triple{Subject: subj, Predicate: rdf.NewIRI(SWCISBN), Object: rdf.NewLiteral(p.ISBN)})
		}
		if tax != nil {
			for _, d := range p.Topics {
				path := strings.TrimPrefix(tax.QualifiedName(d), rootPrefix)
				g.Add(rdf.Triple{Subject: subj, Predicate: rdf.NewIRI(SWCTopic), Object: rdf.NewLiteral(path)})
			}
		}
	}
	return g
}

// UnmarshalCatalog loads product entries from an RDF catalog document
// into the community, resolving descriptor paths against the community's
// taxonomy. Unknown topic paths are an error: catalog and taxonomy are
// published together and must agree.
func UnmarshalCatalog(g *rdf.Graph, c *model.Community) error {
	typ, prodType := rdf.NewIRI(RDFType), rdf.NewIRI(SWCProduct)
	tax := c.Taxonomy()
	rootName := ""
	if tax != nil {
		rootName = tax.Name(taxonomy.Root)
	}
	for _, tr := range g.Match(nil, &typ, &prodType) {
		if tr.Subject.Kind != rdf.IRI {
			return fmt.Errorf("%w: product subject must be an IRI, got %s", ErrMalformed, tr.Subject)
		}
		p := model.Product{ID: model.ProductID(tr.Subject.Value)}
		if titles := g.Objects(tr.Subject.Value, DCTitle); len(titles) > 0 {
			p.Title = titles[0].Value
		}
		if isbns := g.Objects(tr.Subject.Value, SWCISBN); len(isbns) > 0 {
			p.ISBN = isbns[0].Value
		}
		for _, o := range g.Objects(tr.Subject.Value, SWCTopic) {
			if tax == nil {
				return fmt.Errorf("%w: catalog carries topics but community has no taxonomy", ErrMalformed)
			}
			d, ok := tax.Lookup(rootName + "/" + o.Value)
			if !ok {
				return fmt.Errorf("%w: product %s references unknown topic %q", ErrMalformed, p.ID, o.Value)
			}
			p.Topics = append(p.Topics, d)
		}
		c.AddProduct(p)
	}
	return nil
}

// formatValue mirrors decimal() for tests needing the lexical form.
func formatValue(v float64) string { return strconv.FormatFloat(v, 'f', -1, 64) }
