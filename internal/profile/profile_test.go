package profile

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"swrec/internal/model"
	"swrec/internal/sparse"
	"swrec/internal/taxonomy"
)

// TestExample1Golden reproduces Example 1 of the paper (§3.3) exactly:
// user a_i mentioned 4 books; Matrix Analysis carries 5 topic descriptors,
// one of them the leaf topic Algebra of the Fig. 1 taxonomy; s = 1000.
// The descriptor share is s/(4·5) = 50, and Eq. 3 distributes it as
// ≈29.09 to Algebra, ≈14.54 to Pure, ≈4.85 to Mathematics, ≈1.21 to
// Science and ≈0.30 to the top element Books.
func TestExample1Golden(t *testing.T) {
	tax := taxonomy.Fig1()
	alg, ok := tax.Lookup("Books/Science/Mathematics/Pure/Algebra")
	if !ok {
		t.Fatal("Fig1 lacks Algebra")
	}
	g := New(tax)
	out := sparse.New(8)
	g.PropagateLeaf(out, alg, 50)

	lookup := func(q string) float64 {
		d, ok := tax.Lookup(q)
		if !ok {
			t.Fatalf("missing %s", q)
		}
		return out[int32(d)]
	}
	// Analytic values (sib+1 factors 2,3,4,4): leaf = 50/1.71875.
	analytic := map[string]float64{
		"Books/Science/Mathematics/Pure/Algebra": 50 / 1.71875,
		"Books/Science/Mathematics/Pure":         50 / 1.71875 / 2,
		"Books/Science/Mathematics":              50 / 1.71875 / 6,
		"Books/Science":                          50 / 1.71875 / 24,
		"Books":                                  50 / 1.71875 / 96,
	}
	for q, want := range analytic {
		if got := lookup(q); math.Abs(got-want) > 1e-9 {
			t.Errorf("sco(%s) = %v, want %v", q, got, want)
		}
	}
	// The paper's printed values carry small rounding error; we match
	// them to within 0.005.
	published := map[string]float64{
		"Books/Science/Mathematics/Pure/Algebra": 29.087,
		"Books/Science/Mathematics/Pure":         14.543,
		"Books/Science/Mathematics":              4.848,
		"Books/Science":                          1.212,
		"Books":                                  0.303,
	}
	for q, want := range published {
		if got := lookup(q); math.Abs(got-want) > 0.005 {
			t.Errorf("sco(%s) = %v, want ≈%v (paper)", q, got, want)
		}
	}
	// The descriptor share is preserved: the path total is exactly 50.
	if got := out.Sum(); math.Abs(got-50) > 1e-9 {
		t.Errorf("path total = %v, want 50", got)
	}
}

// example1Community builds the 4-book community of Example 1 end to end.
func example1Community(t *testing.T) (*model.Community, *model.Agent) {
	t.Helper()
	tax := taxonomy.Fig1()
	c := model.NewCommunity(tax)
	alg, _ := tax.Lookup("Books/Science/Mathematics/Pure/Algebra")
	phy, _ := tax.Lookup("Books/Science/Physics")
	ast, _ := tax.Lookup("Books/Science/Astronomy")
	nat, _ := tax.Lookup("Books/Science/Nature")
	fic, _ := tax.Lookup("Books/Fiction")
	app, _ := tax.Lookup("Books/Science/Mathematics/Applied")

	c.AddProduct(model.Product{ID: "urn:isbn:0521386322", Title: "Matrix Analysis",
		Topics: []taxonomy.Topic{alg, phy, ast, nat, fic}})
	c.AddProduct(model.Product{ID: "urn:isbn:0802713319", Title: "Fermat's Enigma",
		Topics: []taxonomy.Topic{app}})
	c.AddProduct(model.Product{ID: "urn:isbn:0553380958", Title: "Snow Crash",
		Topics: []taxonomy.Topic{fic}})
	c.AddProduct(model.Product{ID: "urn:isbn:0441569560", Title: "Neuromancer",
		Topics: []taxonomy.Topic{fic}})

	for _, p := range c.Products() {
		if err := c.SetRating("ai", p, 1); err != nil {
			t.Fatal(err)
		}
	}
	return c, c.Agent("ai")
}

func TestExample1FullProfile(t *testing.T) {
	c, ai := example1Community(t)
	g := New(c.Taxonomy())
	prof := g.Profile(ai, c)

	// Total profile score is normalized to s = 1000.
	if got := prof.Sum(); math.Abs(got-1000) > 1e-6 {
		t.Fatalf("profile total = %v, want 1000", got)
	}
	// The Algebra descriptor contributes exactly per Example 1: only
	// Matrix Analysis's Algebra descriptor reaches Pure and Algebra.
	alg, _ := c.Taxonomy().Lookup("Books/Science/Mathematics/Pure/Algebra")
	pure, _ := c.Taxonomy().Lookup("Books/Science/Mathematics/Pure")
	if got := prof[int32(alg)]; math.Abs(got-29.0909090909) > 1e-6 {
		t.Errorf("sco(Algebra) = %v, want 29.0909...", got)
	}
	if got := prof[int32(pure)]; math.Abs(got-14.5454545455) > 1e-6 {
		t.Errorf("sco(Pure) = %v, want 14.5454...", got)
	}
}

func TestProfileSkipsNegativeAndUnknown(t *testing.T) {
	tax := taxonomy.Fig1()
	c := model.NewCommunity(tax)
	fic, _ := tax.Lookup("Books/Fiction")
	c.AddProduct(model.Product{ID: "liked", Topics: []taxonomy.Topic{fic}})
	c.AddProduct(model.Product{ID: "hated", Topics: []taxonomy.Topic{fic}})
	c.AddProduct(model.Product{ID: "bare"}) // no descriptors
	must(t, c.SetRating("a", "liked", 0.8))
	must(t, c.SetRating("a", "hated", -0.8))
	must(t, c.SetRating("a", "bare", 1))

	g := New(tax)
	prof := g.Profile(c.Agent("a"), c)
	// Only "liked" contributes; it gets the full s.
	if got := prof.Sum(); math.Abs(got-1000) > 1e-6 {
		t.Fatalf("profile total = %v, want 1000 (one contributing product)", got)
	}
	if prof[int32(fic)] <= 0 {
		t.Fatal("liked product's descriptor got no score")
	}
}

func TestProfileEmptyAgent(t *testing.T) {
	tax := taxonomy.Fig1()
	c := model.NewCommunity(tax)
	g := New(tax)
	prof := g.Profile(c.AddAgent("mute"), c)
	if len(prof) != 0 {
		t.Fatalf("empty history must yield empty profile, got %v", prof)
	}
}

func TestWeightByRating(t *testing.T) {
	// Algebra and Calculus are siblings: identical path divisors, so the
	// leaf scores directly expose the product-share split.
	tax := taxonomy.Fig1()
	alg, _ := tax.Lookup("Books/Science/Mathematics/Pure/Algebra")
	calc, _ := tax.Lookup("Books/Science/Mathematics/Pure/Calculus")
	c := model.NewCommunity(tax)
	c.AddProduct(model.Product{ID: "math", Topics: []taxonomy.Topic{alg}})
	c.AddProduct(model.Product{ID: "other", Topics: []taxonomy.Topic{calc}})
	must(t, c.SetRating("a", "math", 1.0))
	must(t, c.SetRating("a", "other", 0.25))

	even := New(tax)
	prof := even.Profile(c.Agent("a"), c)
	if math.Abs(prof[int32(alg)]/prof[int32(calc)]-1) > 1e-9 {
		t.Fatalf("even split should give equal sibling leaf scores, got %v vs %v",
			prof[int32(alg)], prof[int32(calc)])
	}

	weighted := New(tax)
	weighted.WeightByRating = true
	wprof := weighted.Profile(c.Agent("a"), c)
	if ratio := wprof[int32(alg)] / wprof[int32(calc)]; math.Abs(ratio-4) > 1e-9 {
		t.Fatalf("weighted split ratio = %v, want 4", ratio)
	}
	if got := wprof.Sum(); math.Abs(got-1000) > 1e-6 {
		t.Fatalf("weighted profile total = %v, want 1000", got)
	}
}

// TestBranchOverlapSimilarity verifies the §3.3 claim: "suppose a_i reads
// literature about Applied Mathematics only, and a_j about Algebra, then
// their computed similarity will be high, considering significant branch
// overlap from node Mathematics onward" — even though they share no
// product. Flat category vectors see nothing.
func TestBranchOverlapSimilarity(t *testing.T) {
	tax := taxonomy.Fig1()
	app, _ := tax.Lookup("Books/Science/Mathematics/Applied")
	alg, _ := tax.Lookup("Books/Science/Mathematics/Pure/Algebra")
	c := model.NewCommunity(tax)
	c.AddProduct(model.Product{ID: "appliedBook", Topics: []taxonomy.Topic{app}})
	c.AddProduct(model.Product{ID: "algebraBook", Topics: []taxonomy.Topic{alg}})
	must(t, c.SetRating("ai", "appliedBook", 1))
	must(t, c.SetRating("aj", "algebraBook", 1))

	g := New(tax)
	pi := g.Profile(c.Agent("ai"), c)
	pj := g.Profile(c.Agent("aj"), c)
	// Eq. 3 concentrates most mass on the leaf, so the cross-branch cosine
	// of two single-book readers is modest — but strictly positive, which
	// is the point: plain product vectors and flat categories both see
	// exactly zero here.
	sim, ok := sparse.Cosine(pi, pj)
	if !ok || sim <= 0.01 {
		t.Fatalf("taxonomy similarity = %v,%v, want positive", sim, ok)
	}

	flat := New(tax)
	flat.Mode = Flat
	fi := flat.Profile(c.Agent("ai"), c)
	fj := flat.Profile(c.Agent("aj"), c)
	fsim, fok := sparse.Cosine(fi, fj)
	if fok && fsim != 0 {
		t.Fatalf("flat category similarity = %v, want 0 (disjoint leaves)", fsim)
	}
	if sim <= fsim {
		t.Fatal("Eq3 propagation must beat flat categories on branch overlap")
	}
}

func TestUniformModeStillOverlapsButDifferently(t *testing.T) {
	tax := taxonomy.Fig1()
	alg, _ := tax.Lookup("Books/Science/Mathematics/Pure/Algebra")
	g := New(tax)
	g.Mode = Uniform
	out := sparse.New(8)
	g.PropagateLeaf(out, alg, 50)
	// 5 path nodes, 10 each.
	if got := out[int32(alg)]; math.Abs(got-10) > 1e-9 {
		t.Fatalf("uniform leaf share = %v, want 10", got)
	}
	if got := out.Sum(); math.Abs(got-50) > 1e-9 {
		t.Fatalf("uniform total = %v, want 50", got)
	}
	if got := g.Mode.String(); got != "uniform" {
		t.Fatalf("Mode.String = %q", got)
	}
}

func TestProductVector(t *testing.T) {
	c := model.NewCommunity(nil)
	c.AddProduct(model.Product{ID: "p1"})
	c.AddProduct(model.Product{ID: "p2"})
	must(t, c.SetRating("a", "p1", 0.5))
	must(t, c.SetRating("a", "p2", -0.5))
	dims := map[model.ProductID]int32{}
	intern := func(p model.ProductID) int32 {
		if d, ok := dims[p]; ok {
			return d
		}
		d := int32(len(dims))
		dims[p] = d
		return d
	}
	v := ProductVector(c.Agent("a"), intern)
	if len(v) != 2 {
		t.Fatalf("product vector = %v, want 2 entries (negatives included)", v)
	}
	if v[dims["p2"]] != -0.5 {
		t.Fatal("negative rating lost")
	}
}

// randomSetup builds a random taxonomy, catalog, and rating history.
func randomSetup(seed int64) (*model.Community, *model.Agent) {
	rng := rand.New(rand.NewSource(seed))
	tax := taxonomy.New("Root")
	for i := 0; i < 40; i++ {
		parent := taxonomy.Topic(rng.Intn(tax.Len()))
		tax.MustAdd(parent, "t"+itoa(i))
	}
	c := model.NewCommunity(tax)
	leaves := tax.Leaves()
	for i := 0; i < 25; i++ {
		nd := 1 + rng.Intn(3)
		topics := make([]taxonomy.Topic, 0, nd)
		for j := 0; j < nd; j++ {
			topics = append(topics, leaves[rng.Intn(len(leaves))])
		}
		c.AddProduct(model.Product{ID: model.ProductID("p" + itoa(i)), Topics: topics})
	}
	prods := c.Products()
	for i := 0; i < 10; i++ {
		_ = c.SetRating("a", prods[rng.Intn(len(prods))], rng.Float64())
	}
	return c, c.Agent("a")
}

// Property: for every mode, the profile total equals s whenever at least
// one product contributes, and every entry is non-negative.
func TestProfileNormalizationProperty(t *testing.T) {
	f := func(seed int64, mode uint8) bool {
		c, a := randomSetup(seed)
		g := New(c.Taxonomy())
		g.Mode = Mode(mode % 3)
		prof := g.Profile(a, c)
		if len(a.Ratings) == 0 {
			return len(prof) == 0
		}
		for _, v := range prof {
			if v < 0 {
				return false
			}
		}
		return math.Abs(prof.Sum()-1000) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: similarity is invariant under the normalization constant s —
// the paper's profiles are comparable across agents regardless of s.
func TestScoreScaleInvarianceProperty(t *testing.T) {
	f := func(seed int64) bool {
		c, a := randomSetup(seed)
		_, b := randomSetup(seed ^ 0x9e3779b9)
		// Rebuild b's ratings against c's catalog so both share it.
		rng := rand.New(rand.NewSource(seed ^ 1))
		bAgent := c.AddAgent("b")
		prods := c.Products()
		for i := 0; i < 10; i++ {
			_ = c.SetRating("b", prods[rng.Intn(len(prods))], rng.Float64())
		}
		_ = b

		g1 := New(c.Taxonomy())
		g2 := New(c.Taxonomy())
		g2.Score = 42
		p1a, p1b := g1.Profile(a, c), g1.Profile(bAgent, c)
		p2a, p2b := g2.Profile(a, c), g2.Profile(bAgent, c)
		s1, ok1 := sparse.Cosine(p1a, p1b)
		s2, ok2 := sparse.Cosine(p2a, p2b)
		if ok1 != ok2 {
			return false
		}
		return !ok1 || math.Abs(s1-s2) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: PropagateLeaf always conserves the share (Eq3 and Uniform) or
// assigns it fully to the leaf (Flat).
func TestPropagationConservationProperty(t *testing.T) {
	f := func(seed int64, mode uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		tax := taxonomy.New("Root")
		for i := 0; i < 30; i++ {
			tax.MustAdd(taxonomy.Topic(rng.Intn(tax.Len())), "t"+itoa(i))
		}
		g := New(tax)
		g.Mode = Mode(mode % 3)
		d := taxonomy.Topic(rng.Intn(tax.Len()))
		out := sparse.New(8)
		share := rng.Float64()*100 + 1
		g.PropagateLeaf(out, d, share)
		return math.Abs(out.Sum()-share) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b []byte
	for i > 0 {
		b = append([]byte{byte('0' + i%10)}, b...)
		i /= 10
	}
	return string(b)
}

func must(t *testing.T, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
}
