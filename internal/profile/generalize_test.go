package profile

import (
	"math"
	"testing"

	"swrec/internal/sparse"
	"swrec/internal/taxonomy"
)

// TestGeneralizeFoldsDeepTopics checks the upward fold against the Fig. 1
// taxonomy: topics deeper than maxDepth move their whole score onto the
// maxDepth ancestor of their primary path, shallower entries pass through.
func TestGeneralizeFoldsDeepTopics(t *testing.T) {
	tax := taxonomy.Fig1()
	lookup := func(q string) taxonomy.Topic {
		d, ok := tax.Lookup(q)
		if !ok {
			t.Fatalf("missing %s", q)
		}
		return d
	}
	alg := lookup("Books/Science/Mathematics/Pure/Algebra") // depth 4
	math2 := lookup("Books/Science/Mathematics")            // depth 2
	sci := lookup("Books/Science")                          // depth 1

	g := New(tax)
	v := sparse.New(4)
	v.Add(int32(alg), 30)
	v.Add(int32(math2), 5)
	v.Add(int32(sci), 2)

	out := g.Generalize(v, 2)
	// Algebra (depth 4) folds onto Mathematics (depth 2), joining the
	// score already sitting there; Science stays put.
	if got := out[int32(math2)]; math.Abs(got-35) > 1e-12 {
		t.Fatalf("Mathematics = %v, want 35", got)
	}
	if got := out[int32(sci)]; got != 2 {
		t.Fatalf("Science = %v, want 2", got)
	}
	if _, ok := out[int32(alg)]; ok {
		t.Fatal("deep topic survived the fold")
	}

	// Total score mass is preserved by the fold.
	var in, folded float64
	for _, e := range v.Entries() {
		in += e.Value
	}
	for _, e := range out.Entries() {
		folded += e.Value
	}
	if math.Abs(in-folded) > 1e-12 {
		t.Fatalf("mass changed: %v -> %v", in, folded)
	}
}

func TestGeneralizeClampsDepth(t *testing.T) {
	tax := taxonomy.Fig1()
	alg, _ := tax.Lookup("Books/Science/Mathematics/Pure/Algebra")
	sci, _ := tax.Lookup("Books/Science")
	g := New(tax)
	v := sparse.New(1)
	v.Add(int32(alg), 10)
	// maxDepth 0 is treated as 1: everything lands on depth-1 ancestors,
	// never on the root (which would erase all distinction).
	out := g.Generalize(v, 0)
	if got := out[int32(sci)]; got != 10 {
		t.Fatalf("fold-to-depth-1 = %v entries %v", got, out.Entries())
	}
	if _, ok := out[int32(taxonomy.Root)]; ok {
		t.Fatal("score folded onto the root")
	}
}

func TestGeneralizeDeterministic(t *testing.T) {
	tax := taxonomy.Fig1()
	g := New(tax)
	v := sparse.New(8)
	for _, l := range tax.Leaves() {
		v.Add(int32(l), 1.0/3.0)
	}
	first := g.Generalize(v, 1)
	for i := 0; i < 20; i++ {
		again := g.Generalize(v, 1)
		if len(again) != len(first) {
			t.Fatalf("run %d: %d entries vs %d", i, len(again), len(first))
		}
		for _, e := range first.Entries() {
			if again[e.Key] != e.Value {
				t.Fatalf("run %d: dim %d = %v vs %v (accumulation order leaked)", i, e.Key, again[e.Key], e.Value)
			}
		}
	}
}

func TestGeneralizeRecoversOverlap(t *testing.T) {
	// Two profiles over sibling leaves of the same super-topic: nearly
	// disjoint at fine grain, identical after generalizing to the shared
	// ancestor's depth — the §2 low-overlap pathology and its cure.
	tax := taxonomy.New("Top")
	branch := tax.MustAdd(taxonomy.Root, "Branch")
	l1 := tax.MustAdd(branch, "leaf-1")
	l2 := tax.MustAdd(branch, "leaf-2")
	g := New(tax)
	a := sparse.New(1)
	a.Add(int32(l1), 10)
	b := sparse.New(1)
	b.Add(int32(l2), 10)
	if sim, ok := sparse.Cosine(a, b); ok && sim > 0 {
		t.Fatalf("fine-grained profiles overlap: %v", sim)
	}
	ga, gb := g.Generalize(a, 1), g.Generalize(b, 1)
	sim, ok := sparse.Cosine(ga, gb)
	if !ok || math.Abs(sim-1) > 1e-12 {
		t.Fatalf("generalized similarity = %v (%v), want 1", sim, ok)
	}
}
