// Package profile implements taxonomy-based interest profile generation,
// the second pillar of the paper's approach (§3.3): instead of sparse
// product-rating vectors, every agent gets a score vector over the topics
// of taxonomy C, so that "one may establish high user similarity for users
// which have not even rated one single product in common".
//
// Score assignment follows the paper exactly:
//
//   - the overall profile score of an agent is a fixed constant s
//     (normalization: agents with short rating histories thus weigh each
//     rating more heavily);
//
//   - s is divided evenly among the products contributing to the profile;
//
//   - a product's share is divided evenly among its topic descriptors
//     f(b);
//
//   - each descriptor's share is distributed over the descriptor and its
//     super-topics along the primary path to the top element ⊤ by Eq. 3:
//
//     sco(p_m) = sco(p_{m+1}) / (sib(p_{m+1}) + 1)
//
//     i.e. remote super-topics receive less score, attenuated by how many
//     siblings compete at each level, with the path total equal to the
//     descriptor's share.
//
// Example 1 of the paper (4 books, 5 descriptors, s = 1000, leaf Algebra)
// is reproduced verbatim by TestExample1 and experiment E1.
package profile

import (
	"context"
	"fmt"
	"sync"

	"swrec/internal/model"
	"swrec/internal/sparse"
	"swrec/internal/taxonomy"
)

// DefaultScore is the overall profile score s used when none is given;
// Example 1 uses 1000.
const DefaultScore = 1000.0

// Mode selects how a descriptor's score spreads over the taxonomy.
type Mode int

const (
	// Eq3 is the paper's sibling-attenuated propagation (default).
	Eq3 Mode = iota
	// Uniform splits a descriptor's share evenly over all path nodes —
	// the ablation of Eq. 3's sibling term (DESIGN.md §5).
	Uniform
	// Flat assigns the entire share to the descriptor topic itself with
	// no super-topic inference. This reproduces plain category-based
	// filtering (Sollenborn & Funk [14]), the baseline whose lost
	// "relationships and mutual impact between categories" the paper
	// criticizes.
	Flat
)

// String names the mode for experiment output.
func (m Mode) String() string {
	switch m {
	case Eq3:
		return "eq3"
	case Uniform:
		return "uniform"
	case Flat:
		return "flat"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Catalog resolves product metadata; *model.Community satisfies it.
type Catalog interface {
	Product(model.ProductID) *model.Product
}

// Generator builds taxonomy profiles. The zero value is unusable; use New.
type Generator struct {
	tax *taxonomy.Taxonomy
	// Score is the normalization constant s. Default DefaultScore.
	Score float64
	// Mode selects the propagation scheme. Default Eq3.
	Mode Mode
	// WeightByRating, when set, splits s over contributing products
	// proportionally to their rating value instead of evenly. Example 1
	// splits evenly ("mentioned" books are implicit unit votes), so the
	// default is false; explicit-rating communities may prefer true.
	WeightByRating bool
	// divisor caches, per topic, the Eq. 3 normalization term
	// Σ_m Π_{j>m} 1/(sib(p_j)+1) for the topic's primary path. Guarded by
	// divisorMu so one Generator can serve concurrent profile builds (the
	// serving engine shares a Generator across request goroutines).
	divisorMu sync.Mutex
	divisor   map[taxonomy.Topic]float64
}

// New creates a generator over the given taxonomy.
func New(tax *taxonomy.Taxonomy) *Generator {
	return &Generator{tax: tax, Score: DefaultScore, divisor: make(map[taxonomy.Topic]float64)}
}

// Taxonomy returns the taxonomy the generator propagates over.
func (g *Generator) Taxonomy() *taxonomy.Taxonomy { return g.tax }

// PropagateLeaf distributes share score units over topic d and its
// super-topics according to the generator's mode, accumulating into out.
// This is the inner step of profile generation, exported for E1 and for
// the incremental updates §4's crawlers perform.
func (g *Generator) PropagateLeaf(out sparse.Vector, d taxonomy.Topic, share float64) {
	path := g.tax.PrimaryPath(d)
	switch g.Mode {
	case Flat:
		out.Add(int32(d), share)
	case Uniform:
		per := share / float64(len(path))
		for _, p := range path {
			out.Add(int32(p), per)
		}
	default: // Eq3
		leaf := share / g.pathDivisor(d, path)
		// Walk from the leaf upward: each super-topic gets its child's
		// score divided by (sib(child)+1).
		sco := leaf
		out.Add(int32(d), sco)
		for i := len(path) - 1; i > 0; i-- {
			sco /= float64(g.tax.Siblings(path[i]) + 1)
			out.Add(int32(path[i-1]), sco)
		}
	}
}

// pathDivisor returns the Eq. 3 normalization 1 + 1/(sib(p_q)+1) +
// 1/((sib(p_q)+1)(sib(p_{q-1})+1)) + ... so that the path total equals the
// descriptor share. Cached per topic.
func (g *Generator) pathDivisor(d taxonomy.Topic, path []taxonomy.Topic) float64 {
	g.divisorMu.Lock()
	defer g.divisorMu.Unlock()
	if v, ok := g.divisor[d]; ok {
		return v
	}
	total, factor := 1.0, 1.0
	for i := len(path) - 1; i > 0; i-- {
		factor /= float64(g.tax.Siblings(path[i]) + 1)
		total += factor
	}
	g.divisor[d] = total
	return total
}

// Profile builds the taxonomy score vector of agent a against the catalog.
// Only positively rated products contribute: "each item the user likes
// infers some interest score" (§3.3). Products missing from the catalog or
// carrying no descriptors are skipped. The returned vector's entries sum
// to (at most) Score; exactly Score when every liked product resolved.
func (g *Generator) Profile(a *model.Agent, cat Catalog) sparse.Vector {
	out, _ := g.ProfileCtx(context.Background(), a, cat)
	return out
}

// ProfileCtx is Profile with cancellation: both the contribution scan and
// the Eq. 3 propagation loop check ctx at per-product boundaries, so a
// caller's deadline interrupts profile generation for agents with long
// rating histories. Returns ctx.Err() (and a nil vector) when cancelled.
func (g *Generator) ProfileCtx(ctx context.Context, a *model.Agent, cat Catalog) (sparse.Vector, error) {
	type contrib struct {
		topics []taxonomy.Topic
		weight float64
	}
	var contribs []contrib
	var totalWeight float64
	for i, rs := range a.RatedProducts() {
		if i&63 == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		if rs.Value <= 0 {
			continue
		}
		p := cat.Product(rs.Product)
		if p == nil || len(p.Topics) == 0 {
			continue
		}
		w := 1.0
		if g.WeightByRating {
			w = rs.Value
		}
		contribs = append(contribs, contrib{topics: p.Topics, weight: w})
		totalWeight += w
	}
	out := sparse.New(len(contribs) * 8)
	if totalWeight == 0 {
		return out, nil
	}
	score := g.Score
	if score == 0 {
		score = DefaultScore
	}
	for i, c := range contribs {
		if i&63 == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		productShare := score * c.weight / totalWeight
		descriptorShare := productShare / float64(len(c.topics))
		for _, d := range c.topics {
			g.PropagateLeaf(out, d, descriptorShare)
		}
	}
	return out, nil
}

// ProductVector returns the agent's plain product-rating vector over the
// dimensions assigned by intern — the representation whose "low profile
// overlap" (§2) taxonomy profiles fix. All ratings appear, including
// negative ones, as common collaborative filtering uses the full history.
func ProductVector(a *model.Agent, intern func(model.ProductID) int32) sparse.Vector {
	out := sparse.New(len(a.Ratings))
	for p, v := range a.Ratings {
		out[intern(p)] = v
	}
	return out
}
