// Package profile implements taxonomy-based interest profile generation,
// the second pillar of the paper's approach (§3.3): instead of sparse
// product-rating vectors, every agent gets a score vector over the topics
// of taxonomy C, so that "one may establish high user similarity for users
// which have not even rated one single product in common".
//
// Score assignment follows the paper exactly:
//
//   - the overall profile score of an agent is a fixed constant s
//     (normalization: agents with short rating histories thus weigh each
//     rating more heavily);
//
//   - s is divided evenly among the products contributing to the profile;
//
//   - a product's share is divided evenly among its topic descriptors
//     f(b);
//
//   - each descriptor's share is distributed over the descriptor and its
//     super-topics along the primary path to the top element ⊤ by Eq. 3:
//
//     sco(p_m) = sco(p_{m+1}) / (sib(p_{m+1}) + 1)
//
//     i.e. remote super-topics receive less score, attenuated by how many
//     siblings compete at each level, with the path total equal to the
//     descriptor's share.
//
// Example 1 of the paper (4 books, 5 descriptors, s = 1000, leaf Algebra)
// is reproduced verbatim by TestExample1 and experiment E1.
package profile

import (
	"context"
	"fmt"
	"sync"

	"swrec/internal/model"
	"swrec/internal/sparse"
	"swrec/internal/taxonomy"
)

// DefaultScore is the overall profile score s used when none is given;
// Example 1 uses 1000.
const DefaultScore = 1000.0

// Mode selects how a descriptor's score spreads over the taxonomy.
type Mode int

const (
	// Eq3 is the paper's sibling-attenuated propagation (default).
	Eq3 Mode = iota
	// Uniform splits a descriptor's share evenly over all path nodes —
	// the ablation of Eq. 3's sibling term (DESIGN.md §5).
	Uniform
	// Flat assigns the entire share to the descriptor topic itself with
	// no super-topic inference. This reproduces plain category-based
	// filtering (Sollenborn & Funk [14]), the baseline whose lost
	// "relationships and mutual impact between categories" the paper
	// criticizes.
	Flat
)

// String names the mode for experiment output.
func (m Mode) String() string {
	switch m {
	case Eq3:
		return "eq3"
	case Uniform:
		return "uniform"
	case Flat:
		return "flat"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Catalog resolves product metadata; *model.Community satisfies it.
type Catalog interface {
	Product(model.ProductID) *model.Product
}

// Generator builds taxonomy profiles. The zero value is unusable; use New.
type Generator struct {
	tax *taxonomy.Taxonomy
	// Score is the normalization constant s. Default DefaultScore.
	Score float64
	// Mode selects the propagation scheme. Default Eq3.
	Mode Mode
	// WeightByRating, when set, splits s over contributing products
	// proportionally to their rating value instead of evenly. Example 1
	// splits evenly ("mentioned" books are implicit unit votes), so the
	// default is false; explicit-rating communities may prefer true.
	WeightByRating bool
	// tables holds the per-topic primary paths and Eq. 3 normalization
	// divisors, flattened into shared arenas and built once on first use
	// (the taxonomy is immutable by the time profiles are generated).
	// Before these tables existed, every propagation re-derived the path —
	// one slice allocation per descriptor per product, the single largest
	// allocation source on the cold serving path.
	tablesOnce sync.Once
	pathOff    []int32          // per topic: start of its path in pathArena
	pathArena  []taxonomy.Topic // concatenated primary paths, root first
	coeffArena []float64        // per path node: Eq. 3 share coefficient, aligned with pathArena
	divisors   []float64        // per topic: Eq. 3 path divisor
}

// New creates a generator over the given taxonomy.
func New(tax *taxonomy.Taxonomy) *Generator {
	return &Generator{tax: tax, Score: DefaultScore}
}

// propTables is the flattened path/coefficient table set of one taxonomy
// at one structural version. Tables are pure functions of the taxonomy
// structure, so every Generator over the same (unchanged) taxonomy shares
// one instance — a recommender pipeline built per request no longer pays
// the O(topics × depth) table derivation.
type propTables struct {
	version    uint64
	pathOff    []int32
	pathArena  []taxonomy.Topic
	coeffArena []float64
	divisors   []float64
}

var (
	tablesMu    sync.Mutex
	tablesCache = map[*taxonomy.Taxonomy]*propTables{}
)

// tablesCacheBound flushes the shared table cache when it accumulates
// this many distinct taxonomies — harnesses that build thousands of
// short-lived taxonomies (datagen sweeps) must not pin them all.
const tablesCacheBound = 64

// tablesFor returns the shared tables for tax, building them when absent
// or stale (taxonomy structurally changed since they were derived).
func tablesFor(tax *taxonomy.Taxonomy) *propTables {
	tablesMu.Lock()
	defer tablesMu.Unlock()
	if t, ok := tablesCache[tax]; ok && t.version == tax.Version() {
		return t
	}
	n := tax.Len()
	t := &propTables{
		version:  tax.Version(),
		pathOff:  make([]int32, n+1),
		divisors: make([]float64, n),
	}
	var scratch []float64
	for d := 0; d < n; d++ {
		path := tax.PrimaryPath(taxonomy.Topic(d))
		t.pathOff[d] = int32(len(t.pathArena))
		t.pathArena = append(t.pathArena, path...)
		total, factor := 1.0, 1.0
		scratch = append(scratch[:0], make([]float64, len(path))...)
		scratch[len(path)-1] = 1
		for i := len(path) - 1; i > 0; i-- {
			factor /= float64(tax.Siblings(path[i]) + 1)
			scratch[i-1] = factor
			total += factor
		}
		t.divisors[d] = total
		// The coefficient of path node i is its attenuation factor
		// over the whole-path divisor: an increment of share units at
		// descriptor d contributes share·coeff to node i, and the
		// coefficients of one path sum to 1.
		for _, f := range scratch {
			t.coeffArena = append(t.coeffArena, f/total)
		}
	}
	t.pathOff[n] = int32(len(t.pathArena))
	if len(tablesCache) >= tablesCacheBound {
		clear(tablesCache)
	}
	tablesCache[tax] = t
	return t
}

// ensureTables binds the shared flattened path and divisor tables of the
// generator's taxonomy. The taxonomy must not change afterwards
// (snapshots freeze it before serving).
func (g *Generator) ensureTables() {
	g.tablesOnce.Do(func() {
		t := tablesFor(g.tax)
		g.pathOff = t.pathOff
		g.pathArena = t.pathArena
		g.coeffArena = t.coeffArena
		g.divisors = t.divisors
	})
}

// pathOf returns topic d's primary path from the shared arena. The slice
// is shared and must not be modified.
func (g *Generator) pathOf(d taxonomy.Topic) []taxonomy.Topic {
	return g.pathArena[g.pathOff[d]:g.pathOff[d+1]]
}

// Taxonomy returns the taxonomy the generator propagates over.
func (g *Generator) Taxonomy() *taxonomy.Taxonomy { return g.tax }

// PropagateLeaf distributes share score units over topic d and its
// super-topics according to the generator's mode, accumulating into out.
// This is the inner step of profile generation, exported for E1 and for
// the incremental updates §4's crawlers perform.
func (g *Generator) PropagateLeaf(out sparse.Vector, d taxonomy.Topic, share float64) {
	g.ensureTables()
	path := g.pathOf(d)
	switch g.Mode {
	case Flat:
		out.Add(int32(d), share)
	case Uniform:
		per := share / float64(len(path))
		for _, p := range path {
			out.Add(int32(p), per)
		}
	default: // Eq3
		// Each path node receives its precomputed share coefficient:
		// the leaf keeps share/divisor, each super-topic that divided by
		// (sib(child)+1) — folded into coeffArena at table-build time.
		coeff := g.coeffArena[g.pathOff[d]:g.pathOff[d+1]]
		for i, p := range path {
			out.Add(int32(p), share*coeff[i])
		}
	}
}

// PropagateLeafFunc is PropagateLeaf emitting through add instead of a
// sparse map — the allocation-free form compiled profile builders
// (internal/profmat) accumulate through. The increments, their values,
// and their order are identical to PropagateLeaf's, so a dense
// accumulation of the add stream reproduces the sparse vector exactly.
func (g *Generator) PropagateLeafFunc(d taxonomy.Topic, share float64, add func(taxonomy.Topic, float64)) {
	g.ensureTables()
	path := g.pathOf(d)
	switch g.Mode {
	case Flat:
		add(d, share)
	case Uniform:
		per := share / float64(len(path))
		for _, p := range path {
			add(p, per)
		}
	default: // Eq3
		coeff := g.coeffArena[g.pathOff[d]:g.pathOff[d+1]]
		for i, p := range path {
			add(p, share*coeff[i])
		}
	}
}

// Profile builds the taxonomy score vector of agent a against the catalog.
// Only positively rated products contribute: "each item the user likes
// infers some interest score" (§3.3). Products missing from the catalog or
// carrying no descriptors are skipped. The returned vector's entries sum
// to (at most) Score; exactly Score when every liked product resolved.
func (g *Generator) Profile(a *model.Agent, cat Catalog) sparse.Vector {
	out, _ := g.ProfileCtx(context.Background(), a, cat)
	return out
}

// ProfileCtx is Profile with cancellation: both the contribution scan and
// the Eq. 3 propagation loop check ctx at per-product boundaries, so a
// caller's deadline interrupts profile generation for agents with long
// rating histories. Returns ctx.Err() (and a nil vector) when cancelled.
func (g *Generator) ProfileCtx(ctx context.Context, a *model.Agent, cat Catalog) (sparse.Vector, error) {
	var s Streamer
	s.g = g
	out := sparse.New(len(a.Ratings) * 4)
	err := s.Profile(ctx, a, cat, func(d taxonomy.Topic, sco float64) {
		out.Add(int32(d), sco)
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// contrib is one product contributing to a profile: its descriptors and
// its share weight.
type contrib struct {
	topics []taxonomy.Topic
	weight float64
}

// Streamer streams agents' profile increments through a callback, reusing
// its scratch buffers across agents so repeated generation (the compiled
// profile matrix, internal/profmat) allocates nothing per agent. A
// Streamer is not safe for concurrent use; compiled builders keep one per
// worker. The increment values and their order are exactly those of
// ProfileCtx, so accumulating the stream reproduces the map-based vector
// bit for bit.
type Streamer struct {
	g        *Generator
	contribs []contrib
}

// NewStreamer returns a Streamer over the generator's taxonomy and
// propagation settings.
func (g *Generator) NewStreamer() *Streamer { return &Streamer{g: g} }

// positiveCatalog is the fast path a catalog may offer: *model.Community
// memoizes the positive, catalog-resolved rating list per agent, so
// collect skips one string-keyed map lookup per rating.
type positiveCatalog interface {
	PositiveRatings(*model.Agent) []model.PositiveRating
}

// collect gathers agent a's contributing products into the reused
// contribs buffer and returns the total contribution weight. The
// contribution order is the positive prefix of RatedProducts (descending
// value, ties by product ID) — deterministic and memoized on the agent.
func (s *Streamer) collect(ctx context.Context, a *model.Agent, cat Catalog) (float64, error) {
	g := s.g
	s.contribs = s.contribs[:0]
	var totalWeight float64
	if pc, ok := cat.(positiveCatalog); ok {
		if err := ctx.Err(); err != nil {
			return 0, err
		}
		for _, pr := range pc.PositiveRatings(a) {
			if len(pr.Product.Topics) == 0 {
				continue
			}
			w := 1.0
			if g.WeightByRating {
				w = pr.Value
			}
			s.contribs = append(s.contribs, contrib{topics: pr.Product.Topics, weight: w})
			totalWeight += w
		}
		return totalWeight, nil
	}
	for i, rs := range a.RatedProducts() {
		if rs.Value <= 0 {
			break // positives form a prefix
		}
		if i&63 == 0 {
			if err := ctx.Err(); err != nil {
				return 0, err
			}
		}
		p := cat.Product(rs.Product)
		if p == nil || len(p.Topics) == 0 {
			continue
		}
		w := 1.0
		if g.WeightByRating {
			w = rs.Value
		}
		s.contribs = append(s.contribs, contrib{topics: p.Topics, weight: w})
		totalWeight += w
	}
	return totalWeight, nil
}

// Profile streams agent a's profile: for every topic receiving score, add
// is called with the increment (topics repeat; callers accumulate).
// Returns ctx.Err() when cancelled, in which case the stream is partial.
func (s *Streamer) Profile(ctx context.Context, a *model.Agent, cat Catalog, add func(taxonomy.Topic, float64)) error {
	g := s.g
	totalWeight, err := s.collect(ctx, a, cat)
	if err != nil {
		return err
	}
	if totalWeight == 0 {
		return nil
	}
	score := g.Score
	if score == 0 {
		score = DefaultScore
	}
	for i, c := range s.contribs {
		if i&63 == 0 {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		productShare := score * c.weight / totalWeight
		descriptorShare := productShare / float64(len(c.topics))
		for _, d := range c.topics {
			g.PropagateLeafFunc(d, descriptorShare, add)
		}
	}
	return nil
}

// ProfileDense streams agent a's profile directly into a caller-owned
// dense accumulator: vals[t] collects topic t's total and bit t of the
// occupancy bitmap marks touched cells. vals must be at least
// taxonomy-length long and bits at least ⌈len(vals)/64⌉ words; the
// caller clears the bitmap between agents (a handful of words — the
// taxonomy-length vals array needs no clearing, occupancy gates every
// read). Walking the bitmap with bits.TrailingZeros64 enumerates the
// touched dimensions in ascending order, which is how internal/profmat
// gathers rows without sorting. The increment values and accumulation
// order match Profile exactly.
func (s *Streamer) ProfileDense(ctx context.Context, a *model.Agent, cat Catalog, vals []float64, bm []uint64) error {
	g := s.g
	g.ensureTables()
	totalWeight, err := s.collect(ctx, a, cat)
	if err != nil {
		return err
	}
	if totalWeight == 0 {
		return nil
	}
	score := g.Score
	if score == 0 {
		score = DefaultScore
	}
	mode := g.Mode
	for i, c := range s.contribs {
		if i&63 == 0 {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		productShare := score * c.weight / totalWeight
		share := productShare / float64(len(c.topics))
		switch mode {
		case Flat:
			for _, d := range c.topics {
				if w, m := d>>6, uint64(1)<<(uint(d)&63); bm[w]&m == 0 {
					bm[w] |= m
					vals[d] = share
				} else {
					vals[d] += share
				}
			}
		case Uniform:
			for _, d := range c.topics {
				path := g.pathOf(d)
				per := share / float64(len(path))
				for _, p := range path {
					if w, m := p>>6, uint64(1)<<(uint(p)&63); bm[w]&m == 0 {
						bm[w] |= m
						vals[p] = per
					} else {
						vals[p] += per
					}
				}
			}
		default: // Eq3
			for _, d := range c.topics {
				off, end := g.pathOff[d], g.pathOff[d+1]
				path := g.pathArena[off:end]
				coeff := g.coeffArena[off:end]
				for k, p := range path {
					v := share * coeff[k]
					if w, m := p>>6, uint64(1)<<(uint(p)&63); bm[w]&m == 0 {
						bm[w] |= m
						vals[p] = v
					} else {
						vals[p] += v
					}
				}
			}
		}
	}
	return nil
}

// Generalize folds a taxonomy profile upward into super-topics: every
// topic deeper than maxDepth moves its whole score onto its primary-path
// ancestor at maxDepth (the root has depth 0). This is the dual of the
// Eq. 3 downward propagation: where Eq. 3 spreads a descriptor's score
// toward ⊤ to make fine-grained profiles comparable, generalization
// abandons the fine grain entirely and compares agents at super-topic
// resolution — the strategy ladder's backoff for profile pairs whose
// deep topics are disjoint (§2's "low profile overlap" pathology).
// Entries are accumulated in ascending dimension order so the folded
// vector is bit-identical across runs. maxDepth < 1 is treated as 1
// (folding everything onto ⊤ would make all profiles identical). The
// input vector is not modified.
func (g *Generator) Generalize(v sparse.Vector, maxDepth int) sparse.Vector {
	g.ensureTables()
	if maxDepth < 1 {
		maxDepth = 1
	}
	out := sparse.New(len(v))
	for _, e := range v.Entries() {
		d := taxonomy.Topic(e.Key)
		if int(d) < 0 || int(d) >= len(g.divisors) {
			continue // dimension outside this taxonomy
		}
		path := g.pathOf(d)
		if len(path)-1 <= maxDepth {
			out.Add(e.Key, e.Value)
			continue
		}
		out.Add(int32(path[maxDepth]), e.Value)
	}
	return out
}

// ProductVector returns the agent's plain product-rating vector over the
// dimensions assigned by intern — the representation whose "low profile
// overlap" (§2) taxonomy profiles fix. All ratings appear, including
// negative ones, as common collaborative filtering uses the full history.
func ProductVector(a *model.Agent, intern func(model.ProductID) int32) sparse.Vector {
	out := sparse.New(len(a.Ratings))
	for p, v := range a.Ratings {
		out[intern(p)] = v
	}
	return out
}
