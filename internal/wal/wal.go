// Package wal implements the durable write path's append-only log: a
// directory of CRC32-protected segment files recording typed community
// mutations (trust/rating upserts and retractions, agent upserts) with
// monotonically increasing sequence numbers.
//
// The paper's agents continually publish new statements ("tailored
// crawlers ... ensure data freshness", §4.1); the serving stack applies
// them in batches via epoch snapshot swaps (internal/ingest). The WAL is
// what makes those mutations durable before they are applied: a write is
// acknowledged only after its batch has been appended and fsynced, so a
// crash between acknowledgment and the next snapshot swap loses nothing —
// on restart, records above the last checkpoint are replayed.
//
// Failure model (mirroring internal/store): a record is trusted only if
// its CRC32 checks out; on Open, a torn tail of the *last* segment (a
// partial final record, e.g. after a crash mid-append) is detected and
// truncated away, recovering every record before it. Corruption anywhere
// else — a failed checksum mid-segment, or a damaged non-final segment —
// is an error, never silently skipped.
//
// Layout:
//
//	<dir>/wal-<firstseq>.log   segment files, rotated at SegmentBytes
//	<dir>/CHECKPOINT           epoch↔sequence mapping of the last durable
//	                           checkpoint (written atomically via rename)
//
// TruncateBefore removes whole segments made redundant by a checkpoint.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"

	"swrec/internal/model"
)

var (
	// ErrClosed is returned by operations on a closed WAL.
	ErrClosed = errors.New("wal: closed")
	// ErrCorrupt is returned when a record fails its CRC or bound checks
	// anywhere except the tail of the last segment.
	ErrCorrupt = errors.New("wal: corrupt record")
	// ErrBadMutation is returned when appending a mutation that cannot be
	// encoded (unknown op).
	ErrBadMutation = errors.New("wal: bad mutation")
	// ErrPoisoned is returned by Append after a group commit has failed:
	// once a write or fsync error leaves durability in doubt, no further
	// appends are acknowledged — acknowledging them would break the
	// contract that every acked record survives a crash. The WAL must be
	// reopened (re-scanning the segments) to resume writing.
	ErrPoisoned = errors.New("wal: poisoned by failed group commit")
)

// Op enumerates the mutation types the log can carry.
type Op uint8

const (
	// OpUpsertTrust records t_src(dst) = v.
	OpUpsertTrust Op = iota + 1
	// OpDeleteTrust retracts t_src(dst).
	OpDeleteTrust
	// OpUpsertRating records r_agent(product) = v.
	OpUpsertRating
	// OpDeleteRating retracts r_agent(product).
	OpDeleteRating
	// OpUpsertAgent materializes an agent (optionally naming it).
	OpUpsertAgent

	opMax = OpUpsertAgent
)

// String names the op for logs and errors.
func (op Op) String() string {
	switch op {
	case OpUpsertTrust:
		return "upsert-trust"
	case OpDeleteTrust:
		return "delete-trust"
	case OpUpsertRating:
		return "upsert-rating"
	case OpDeleteRating:
		return "delete-rating"
	case OpUpsertAgent:
		return "upsert-agent"
	default:
		return fmt.Sprintf("op(%d)", uint8(op))
	}
}

// Mutation is one typed community mutation. Field use by op:
//
//	OpUpsertTrust:  Agent (source), Peer (target), Value
//	OpDeleteTrust:  Agent (source), Peer (target)
//	OpUpsertRating: Agent, Product, Value
//	OpDeleteRating: Agent, Product
//	OpUpsertAgent:  Agent, Name (optional display name)
type Mutation struct {
	Op      Op
	Agent   model.AgentID
	Peer    model.AgentID
	Product model.ProductID
	Value   float64
	Name    string
}

// maxFieldLen bounds each string field; URIs and names beyond this are
// garbage, and the bound keeps decode allocations sane.
const maxFieldLen = 64 << 10

// encode appends the mutation's wire form (op + fields) to buf.
func (m Mutation) encode(buf []byte) ([]byte, error) {
	if m.Op == 0 || m.Op > opMax {
		return nil, fmt.Errorf("%w: %v", ErrBadMutation, m.Op)
	}
	if len(m.Agent) > maxFieldLen || len(m.Peer) > maxFieldLen ||
		len(m.Product) > maxFieldLen || len(m.Name) > maxFieldLen {
		return nil, fmt.Errorf("%w: field too large", ErrBadMutation)
	}
	buf = append(buf, byte(m.Op))
	putStr := func(s string) {
		buf = binary.AppendUvarint(buf, uint64(len(s)))
		buf = append(buf, s...)
	}
	putStr(string(m.Agent))
	switch m.Op {
	case OpUpsertTrust:
		putStr(string(m.Peer))
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(m.Value))
	case OpDeleteTrust:
		putStr(string(m.Peer))
	case OpUpsertRating:
		putStr(string(m.Product))
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(m.Value))
	case OpDeleteRating:
		putStr(string(m.Product))
	case OpUpsertAgent:
		putStr(m.Name)
	}
	return buf, nil
}

// decodeMutation parses one mutation from b, returning the remainder.
func decodeMutation(b []byte) (Mutation, []byte, error) {
	var m Mutation
	if len(b) < 1 {
		return m, nil, fmt.Errorf("%w: empty mutation", ErrCorrupt)
	}
	m.Op = Op(b[0])
	if m.Op == 0 || m.Op > opMax {
		return m, nil, fmt.Errorf("%w: unknown op %d", ErrCorrupt, b[0])
	}
	b = b[1:]
	getStr := func() (string, error) {
		n, k := binary.Uvarint(b)
		if k <= 0 || n > maxFieldLen || uint64(len(b)-k) < n {
			return "", fmt.Errorf("%w: bad string field", ErrCorrupt)
		}
		s := string(b[k : k+int(n)])
		b = b[k+int(n):]
		return s, nil
	}
	getF64 := func() (float64, error) {
		if len(b) < 8 {
			return 0, fmt.Errorf("%w: truncated value", ErrCorrupt)
		}
		v := math.Float64frombits(binary.LittleEndian.Uint64(b))
		b = b[8:]
		return v, nil
	}
	var err error
	var s string
	if s, err = getStr(); err != nil {
		return m, nil, err
	}
	m.Agent = model.AgentID(s)
	switch m.Op {
	case OpUpsertTrust, OpDeleteTrust:
		if s, err = getStr(); err != nil {
			return m, nil, err
		}
		m.Peer = model.AgentID(s)
		if m.Op == OpUpsertTrust {
			if m.Value, err = getF64(); err != nil {
				return m, nil, err
			}
		}
	case OpUpsertRating, OpDeleteRating:
		if s, err = getStr(); err != nil {
			return m, nil, err
		}
		m.Product = model.ProductID(s)
		if m.Op == OpUpsertRating {
			if m.Value, err = getF64(); err != nil {
				return m, nil, err
			}
		}
	case OpUpsertAgent:
		if m.Name, err = getStr(); err != nil {
			return m, nil, err
		}
	}
	return m, b, nil
}

// Record framing: crc32(payload) + uint32 payload length + payload, where
// payload = uvarint seq + mutation wire form.
const frameHeader = 8

// File is the handle the WAL appends through. *os.File satisfies it; the
// indirection exists so tests can interpose fault-injecting wrappers
// (internal/faultinject) on the write path.
type File interface {
	io.Writer
	io.Seeker
	Truncate(size int64) error
	Sync() error
	Close() error
}

// Options configure a WAL.
type Options struct {
	// SegmentBytes rotates the active segment once it exceeds this size
	// (default 4 MiB).
	SegmentBytes int64
	// NoSync skips fsync after appends. Only for tests and benchmarks:
	// it voids the durability guarantee.
	NoSync bool
	// WrapFile, when set, wraps each active segment file as it is opened —
	// the fault-injection seam. Nil uses the raw *os.File. The read path
	// (Replay, Open scans) is never wrapped.
	WrapFile func(*os.File) File
}

func (o Options) withDefaults() Options {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 4 << 20
	}
	return o
}

// wrap applies the WrapFile seam to a freshly opened active segment.
func (o Options) wrap(f *os.File) File {
	if o.WrapFile != nil {
		return o.WrapFile(f)
	}
	return f
}

// segment is one immutable (or active) log file.
type segment struct {
	path     string
	firstSeq uint64 // sequence number of its first record
}

// segmentName formats the file name for a segment starting at seq.
func segmentName(seq uint64) string { return fmt.Sprintf("wal-%016x.log", seq) }

// parseSegmentName extracts the first sequence number, reporting ok=false
// for unrelated files.
func parseSegmentName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, "wal-") || !strings.HasSuffix(name, ".log") {
		return 0, false
	}
	seq, err := strconv.ParseUint(name[4:len(name)-4], 16, 64)
	return seq, err == nil
}

// OldestSeq reports the first sequence number of the oldest retained
// segment in dir, without opening the log: the recovery ladder's
// coverage probe — a checkpoint at sequence S is replayable only when
// the retained WAL still starts at or before S+1. ok is false when the
// directory holds no segments (an empty or missing log covers any
// starting point).
func OldestSeq(dir string) (seq uint64, ok bool, err error) {
	entries, err := os.ReadDir(dir)
	if errors.Is(err, os.ErrNotExist) {
		return 0, false, nil
	}
	if err != nil {
		return 0, false, fmt.Errorf("wal: read dir %s: %w", dir, err)
	}
	for _, e := range entries {
		if s, isSeg := parseSegmentName(e.Name()); isSeg && (!ok || s < seq) {
			seq, ok = s, true
		}
	}
	return seq, ok, nil
}

// WAL is an append-only mutation log over a directory of segments. All
// methods are safe for concurrent use; appends are serialized.
type WAL struct {
	mu       sync.Mutex
	dir      string
	opt      Options
	segments []segment // sorted by firstSeq; last is active
	active   File
	size     int64  // active segment size
	nextSeq  uint64 // sequence number the next record receives
	appended uint64 // records appended in this process, for Stats
	poisoned bool   // a group commit failed; no further appends acked
	closed   bool
}

// Open opens (creating if necessary) the WAL directory, scans all
// segments to find the next sequence number, and repairs a torn tail on
// the last segment.
func Open(dir string, opt Options) (*WAL, error) {
	opt = opt.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: mkdir %s: %w", dir, err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("wal: read dir %s: %w", dir, err)
	}
	w := &WAL{dir: dir, opt: opt, nextSeq: 1}
	for _, e := range entries {
		if seq, ok := parseSegmentName(e.Name()); ok {
			w.segments = append(w.segments, segment{path: filepath.Join(dir, e.Name()), firstSeq: seq})
		}
	}
	sort.Slice(w.segments, func(i, j int) bool { return w.segments[i].firstSeq < w.segments[j].firstSeq })

	// Non-final segments must be fully intact: a tear there means records
	// after it exist that depend on the lost ones, so it is corruption.
	for i, seg := range w.segments {
		last := i == len(w.segments)-1
		lastSeq, size, err := scanSegment(seg.path, seg.firstSeq, last)
		if err != nil {
			return nil, err
		}
		if lastSeq >= w.nextSeq {
			w.nextSeq = lastSeq + 1
		}
		if last {
			w.size = size
		}
	}
	if len(w.segments) == 0 {
		if err := w.rotateLocked(); err != nil {
			return nil, err
		}
	} else {
		tail := w.segments[len(w.segments)-1]
		f, err := os.OpenFile(tail.path, os.O_RDWR, 0o644)
		if err != nil {
			return nil, fmt.Errorf("wal: open segment: %w", err)
		}
		active := opt.wrap(f)
		// scanSegment already truncated a torn tail logically; make it
		// physical so appends land right after the last good record.
		if err := active.Truncate(w.size); err != nil {
			return nil, fmt.Errorf("wal: truncate torn tail: %w", errors.Join(err, active.Close()))
		}
		if _, err := active.Seek(w.size, io.SeekStart); err != nil {
			return nil, fmt.Errorf("wal: seek: %w", errors.Join(err, active.Close()))
		}
		w.active = active
	}
	return w, nil
}

// scanSegment walks one segment, validating every record. For the last
// segment a torn tail is tolerated (its offset is returned as the good
// size); anywhere else it is corruption. Returns the last sequence number
// seen (0 if the segment is empty) and the byte size of the intact
// prefix.
func scanSegment(path string, firstSeq uint64, tolerateTear bool) (lastSeq uint64, goodSize int64, err error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, 0, fmt.Errorf("wal: open segment %s: %w", path, err)
	}
	defer f.Close() //nolint:durableerr -- read-only scan; no acked bytes ride on this close
	info, err := f.Stat()
	if err != nil {
		return 0, 0, fmt.Errorf("wal: stat segment: %w", err)
	}
	size := info.Size()
	var off int64
	want := firstSeq
	for off < size {
		seq, _, recLen, rerr := readRecord(f, off, size)
		if rerr != nil {
			if errors.Is(rerr, errTorn) && tolerateTear {
				return want - 1, off, nil
			}
			if errors.Is(rerr, errTorn) {
				return 0, 0, fmt.Errorf("%w: torn record in non-final segment %s at offset %d", ErrCorrupt, path, off)
			}
			return 0, 0, fmt.Errorf("%s at offset %d: %w", path, off, rerr)
		}
		if seq != want {
			return 0, 0, fmt.Errorf("%w: %s holds seq %d where %d was expected", ErrCorrupt, path, seq, want)
		}
		want = seq + 1
		off += recLen
	}
	return want - 1, off, nil
}

// errTorn marks an incomplete record at the end of a segment.
var errTorn = errors.New("wal: torn record")

// readRecord reads and validates the framed record at off.
func readRecord(r io.ReaderAt, off, size int64) (seq uint64, m Mutation, recLen int64, err error) {
	var hdr [frameHeader]byte
	if off+frameHeader > size {
		return 0, m, 0, errTorn
	}
	if _, err := r.ReadAt(hdr[:], off); err != nil {
		return 0, m, 0, fmt.Errorf("wal: read header: %w", err)
	}
	crc := binary.LittleEndian.Uint32(hdr[0:4])
	plen := binary.LittleEndian.Uint32(hdr[4:8])
	if plen > 1+binary.MaxVarintLen64+uint32(4*(binary.MaxVarintLen32+maxFieldLen))+8 {
		return 0, m, 0, fmt.Errorf("%w: absurd payload length %d", ErrCorrupt, plen)
	}
	recLen = frameHeader + int64(plen)
	if off+recLen > size {
		return 0, m, 0, errTorn
	}
	payload := make([]byte, plen)
	if _, err := r.ReadAt(payload, off+frameHeader); err != nil {
		return 0, m, 0, fmt.Errorf("wal: read payload: %w", err)
	}
	if crc32.ChecksumIEEE(payload) != crc {
		return 0, m, 0, fmt.Errorf("%w: checksum mismatch", ErrCorrupt)
	}
	seq, k := binary.Uvarint(payload)
	if k <= 0 {
		return 0, m, 0, fmt.Errorf("%w: bad sequence varint", ErrCorrupt)
	}
	m, rest, err := decodeMutation(payload[k:])
	if err != nil {
		return 0, m, 0, err
	}
	if len(rest) != 0 {
		return 0, m, 0, fmt.Errorf("%w: %d trailing payload bytes", ErrCorrupt, len(rest))
	}
	return seq, m, recLen, nil
}

// rotateLocked opens a fresh segment named by the next sequence number.
// Caller holds w.mu (or is initializing).
func (w *WAL) rotateLocked() error {
	if w.active != nil {
		if err := w.active.Sync(); err != nil {
			return fmt.Errorf("wal: sync before rotate: %w", err)
		}
		if err := w.active.Close(); err != nil {
			return fmt.Errorf("wal: close before rotate: %w", err)
		}
	}
	seg := segment{path: filepath.Join(w.dir, segmentName(w.nextSeq)), firstSeq: w.nextSeq}
	f, err := os.OpenFile(seg.path, os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("wal: create segment: %w", err)
	}
	w.segments = append(w.segments, seg)
	w.active = w.opt.wrap(f)
	w.size = 0
	syncDir(w.dir)
	return nil
}

// syncDir best-effort fsyncs a directory so segment creations/removals
// survive a crash.
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync()  //nolint:durableerr -- directory fsync is best-effort: POSIX gives no portable guarantee, and the segment bytes themselves are already synced
		_ = d.Close() //nolint:durableerr -- read-only directory handle; no acked bytes ride on this close
	}
}

// Append durably writes the batch: every mutation becomes one record with
// a consecutive sequence number, the whole batch is written with a single
// write call and (unless NoSync) a single fsync — the group-commit that
// makes per-mutation durability affordable. Returns the first and last
// sequence numbers assigned. An empty batch is a no-op.
func (w *WAL) Append(muts []Mutation) (first, last uint64, err error) {
	if len(muts) == 0 {
		return 0, 0, nil
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return 0, 0, ErrClosed
	}
	if w.poisoned {
		return 0, 0, ErrPoisoned
	}
	if w.size >= w.opt.SegmentBytes {
		if err := w.rotateLocked(); err != nil {
			// The sync-and-close of the outgoing segment failed, so even
			// previously acked records are of uncertain durability.
			w.poisoned = true
			return 0, 0, err
		}
	}
	first = w.nextSeq
	buf := make([]byte, 0, 64*len(muts))
	var payload []byte
	for i, m := range muts {
		payload = payload[:0]
		payload = binary.AppendUvarint(payload, w.nextSeq+uint64(i))
		payload, err = m.encode(payload)
		if err != nil {
			return 0, 0, err
		}
		var hdr [frameHeader]byte
		binary.LittleEndian.PutUint32(hdr[0:4], crc32.ChecksumIEEE(payload))
		binary.LittleEndian.PutUint32(hdr[4:8], uint32(len(payload)))
		buf = append(buf, hdr[:]...)
		buf = append(buf, payload...)
	}
	if _, err := w.active.Write(buf); err != nil {
		w.poisonLocked()
		return 0, 0, fmt.Errorf("wal: append: %w", err)
	}
	if !w.opt.NoSync {
		if err := w.active.Sync(); err != nil {
			// The kernel may have flushed any prefix of the batch — or
			// nothing. Durability of this batch is unknowable, so it must
			// not be acked, and the segment is rolled back to the last
			// acked record so a later Replay sees exactly the acked set.
			w.poisonLocked()
			return 0, 0, fmt.Errorf("wal: sync: %w", err)
		}
	}
	w.size += int64(len(buf))
	w.nextSeq += uint64(len(muts))
	w.appended += uint64(len(muts))
	return first, w.nextSeq - 1, nil
}

// poisonLocked marks the log append-dead after a failed group commit and
// rolls the active segment back to the last acknowledged record: a short
// write leaves a torn tail, and an unacked intact record would replay a
// mutation the caller was told failed. Caller holds w.mu.
func (w *WAL) poisonLocked() {
	w.poisoned = true
	_ = w.active.Truncate(w.size) //nolint:durableerr -- log is already poisoned and refuses appends; the rollback is best-effort hygiene
	_, _ = w.active.Seek(w.size, io.SeekStart)
}

// NextSeq returns the sequence number the next appended record receives.
func (w *WAL) NextSeq() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.nextSeq
}

// Replay calls fn for every record with seq >= from, in sequence order.
// fn returning an error aborts the replay with that error.
func (w *WAL) Replay(from uint64, fn func(seq uint64, m Mutation) error) error {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return ErrClosed
	}
	// Flush the active segment so the scan sees every appended record. A
	// poisoned log skips this: its file already holds exactly the acked
	// records, and its sync path is what failed in the first place.
	if w.active != nil && !w.opt.NoSync && !w.poisoned {
		if err := w.active.Sync(); err != nil {
			w.mu.Unlock()
			return fmt.Errorf("wal: sync before replay: %w", err)
		}
	}
	segs := append([]segment(nil), w.segments...)
	w.mu.Unlock()

	for i, seg := range segs {
		// Skip segments wholly below the replay point.
		if i+1 < len(segs) && segs[i+1].firstSeq <= from {
			continue
		}
		if err := replaySegment(seg, from, i == len(segs)-1, fn); err != nil {
			return err
		}
	}
	return nil
}

// replaySegment walks one segment invoking fn for records >= from.
func replaySegment(seg segment, from uint64, last bool, fn func(uint64, Mutation) error) error {
	f, err := os.Open(seg.path)
	if err != nil {
		return fmt.Errorf("wal: open segment: %w", err)
	}
	defer f.Close() //nolint:durableerr -- read-only replay; no acked bytes ride on this close
	info, err := f.Stat()
	if err != nil {
		return fmt.Errorf("wal: stat segment: %w", err)
	}
	size := info.Size()
	var off int64
	for off < size {
		seq, m, recLen, err := readRecord(f, off, size)
		if err != nil {
			if errors.Is(err, errTorn) && last {
				return nil
			}
			return fmt.Errorf("%s at offset %d: %w", seg.path, off, err)
		}
		if seq >= from {
			if err := fn(seq, m); err != nil {
				return err
			}
		}
		off += recLen
	}
	return nil
}

// TruncateBefore removes whole segments whose records all have seq < seq
// — the space reclamation after a checkpoint has made those records
// redundant. The active segment is never removed. Returns the number of
// segments deleted.
func (w *WAL) TruncateBefore(seq uint64) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return 0, ErrClosed
	}
	removed := 0
	for len(w.segments) > 1 && w.segments[1].firstSeq <= seq {
		if err := os.Remove(w.segments[0].path); err != nil {
			return removed, fmt.Errorf("wal: remove segment: %w", err)
		}
		w.segments = w.segments[1:]
		removed++
	}
	if removed > 0 {
		syncDir(w.dir)
	}
	return removed, nil
}

// Stats describes the WAL's physical state.
type Stats struct {
	Segments    int    // segment files on disk
	NextSeq     uint64 // sequence number of the next record
	Appended    uint64 // records appended by this process
	ActiveBytes int64  // size of the active segment
	Poisoned    bool   // a group commit failed; appends are refused
}

// Stats returns current statistics.
func (w *WAL) Stats() Stats {
	w.mu.Lock()
	defer w.mu.Unlock()
	return Stats{Segments: len(w.segments), NextSeq: w.nextSeq, Appended: w.appended, ActiveBytes: w.size, Poisoned: w.poisoned}
}

// Close syncs and releases the WAL. Further operations return ErrClosed.
func (w *WAL) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return nil
	}
	w.closed = true
	if w.active == nil {
		return nil
	}
	if w.poisoned {
		// Already rolled back to the acked set; the sync path is broken,
		// so just release the handle.
		return w.active.Close()
	}
	if err := w.active.Sync(); err != nil {
		return fmt.Errorf("wal: close sync: %w", errors.Join(err, w.active.Close()))
	}
	return w.active.Close()
}

// checkpointFile is the name of the epoch↔sequence checkpoint marker.
const checkpointFile = "CHECKPOINT"

// Checkpoint is the durable epoch↔sequence mapping: every record with
// seq <= Seq is reflected in the durable community snapshot that was
// published as Epoch. Replay after a crash starts at Seq+1.
type Checkpoint struct {
	Epoch uint64
	Seq   uint64
}

// SaveCheckpoint atomically writes the checkpoint marker into dir
// (write-to-temp, fsync, rename).
func SaveCheckpoint(dir string, c Checkpoint) error {
	tmp := filepath.Join(dir, checkpointFile+".tmp")
	body := fmt.Sprintf("epoch=%d seq=%d\n", c.Epoch, c.Seq)
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("wal: checkpoint: %w", err)
	}
	if _, err := f.WriteString(body); err != nil {
		return fmt.Errorf("wal: checkpoint write: %w", errors.Join(err, f.Close()))
	}
	if err := f.Sync(); err != nil {
		return fmt.Errorf("wal: checkpoint sync: %w", errors.Join(err, f.Close()))
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("wal: checkpoint close: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(dir, checkpointFile)); err != nil {
		return fmt.Errorf("wal: checkpoint rename: %w", err)
	}
	syncDir(dir)
	return nil
}

// LoadCheckpoint reads the checkpoint marker from dir; ok is false when
// none has been written yet.
func LoadCheckpoint(dir string) (c Checkpoint, ok bool, err error) {
	data, err := os.ReadFile(filepath.Join(dir, checkpointFile))
	if errors.Is(err, os.ErrNotExist) {
		return Checkpoint{}, false, nil
	}
	if err != nil {
		return Checkpoint{}, false, fmt.Errorf("wal: read checkpoint: %w", err)
	}
	if _, err := fmt.Sscanf(string(data), "epoch=%d seq=%d", &c.Epoch, &c.Seq); err != nil {
		return Checkpoint{}, false, fmt.Errorf("%w: malformed checkpoint %q", ErrCorrupt, strings.TrimSpace(string(data)))
	}
	return c, true, nil
}
