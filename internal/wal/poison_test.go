package wal

import (
	"errors"
	"os"
	"testing"

	"swrec/internal/faultinject"
	"swrec/internal/model"
)

// appendUntilFault appends single-mutation batches through a faulty file
// wrapper until a group commit fails, returning the acked mutations.
func appendUntilFault(t *testing.T, w *WAL, limit int) (acked []Mutation, faultErr error) {
	t.Helper()
	for i := 0; i < limit; i++ {
		m := Mutation{Op: OpUpsertRating, Agent: "urn:a", Product: model.ProductID(rune('a' + i%26)), Value: float64(i)}
		if _, _, err := w.Append([]Mutation{m}); err != nil {
			return acked, err
		}
		acked = append(acked, m)
	}
	t.Fatalf("no fault fired within %d appends", limit)
	return nil, nil
}

// replayAll collects every record in the log.
func replayAll(t *testing.T, w *WAL) []Mutation {
	t.Helper()
	var out []Mutation
	if err := w.Replay(0, func(_ uint64, m Mutation) error {
		out = append(out, m)
		return nil
	}); err != nil {
		t.Fatalf("replay: %v", err)
	}
	return out
}

func mutationsEqual(a, b []Mutation) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// testPoisoning drives appends through an injector until a commit fails,
// then asserts the poison contract: no further acks, and both in-process
// replay and a fresh reopen surface exactly the acked records.
func testPoisoning(t *testing.T, cfg faultinject.Config) {
	dir := t.TempDir()
	inj := faultinject.New(cfg)
	w, err := Open(dir, Options{WrapFile: func(f *os.File) File { return inj.File(f) }})
	if err != nil {
		t.Fatal(err)
	}
	acked, faultErr := appendUntilFault(t, w, 200)
	if !errors.Is(faultErr, faultinject.ErrInjected) {
		t.Fatalf("fault error = %v, want ErrInjected", faultErr)
	}
	if len(acked) == 0 {
		t.Fatal("seed produced no acked records before the fault; pick another seed")
	}

	// Poisoned: nothing further may be acknowledged.
	if _, _, err := w.Append([]Mutation{{Op: OpUpsertAgent, Agent: "urn:late"}}); !errors.Is(err, ErrPoisoned) {
		t.Fatalf("append after failed commit = %v, want ErrPoisoned", err)
	}
	if !w.Stats().Poisoned {
		t.Fatal("Stats().Poisoned = false after failed commit")
	}

	// The rolled-back log replays exactly the acked set, both in-process…
	if got := replayAll(t, w); !mutationsEqual(got, acked) {
		t.Fatalf("in-process replay: %d records, acked %d", len(got), len(acked))
	}
	if err := w.Close(); err != nil {
		t.Fatalf("close poisoned wal: %v", err)
	}

	// …and after a clean reopen (the crash-recovery path).
	w2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer w2.Close()
	if got := replayAll(t, w2); !mutationsEqual(got, acked) {
		t.Fatalf("reopen replay: %d records, acked %d", len(got), len(acked))
	}
	// And the reopened log accepts appends again.
	if _, _, err := w2.Append([]Mutation{{Op: OpUpsertAgent, Agent: "urn:fresh"}}); err != nil {
		t.Fatalf("append after reopen: %v", err)
	}
}

func TestPoisonOnWriteError(t *testing.T) {
	testPoisoning(t, faultinject.Config{Seed: 11, WriteErrorRate: 0.2})
}

func TestPoisonOnTornWrite(t *testing.T) {
	testPoisoning(t, faultinject.Config{Seed: 12, TornWriteRate: 0.2})
}

func TestPoisonOnSyncError(t *testing.T) {
	testPoisoning(t, faultinject.Config{Seed: 14, SyncErrorRate: 0.2})
}
