package wal

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"swrec/internal/model"
)

func ag(s string) model.AgentID   { return model.AgentID(s) }
func pr(s string) model.ProductID { return model.ProductID(s) }

func openWAL(t *testing.T, dir string, opt Options) *WAL {
	t.Helper()
	w, err := Open(dir, opt)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { w.Close() })
	return w
}

// muts fabricates n distinct mutations cycling through every op.
func muts(n, base int) []Mutation {
	out := make([]Mutation, n)
	for i := range out {
		a := fmt.Sprintf("http://x/a%d", base+i)
		b := fmt.Sprintf("http://x/b%d", base+i)
		p := fmt.Sprintf("urn:isbn:%d", base+i)
		switch i % 5 {
		case 0:
			out[i] = Mutation{Op: OpUpsertTrust, Agent: ag(a), Peer: ag(b), Value: 0.5}
		case 1:
			out[i] = Mutation{Op: OpDeleteTrust, Agent: ag(a), Peer: ag(b)}
		case 2:
			out[i] = Mutation{Op: OpUpsertRating, Agent: ag(a), Product: pr(p), Value: -0.75}
		case 3:
			out[i] = Mutation{Op: OpDeleteRating, Agent: ag(a), Product: pr(p)}
		case 4:
			out[i] = Mutation{Op: OpUpsertAgent, Agent: ag(a), Name: "Agent " + a}
		}
	}
	return out
}

func collect(t *testing.T, w *WAL, from uint64) (seqs []uint64, all []Mutation) {
	t.Helper()
	if err := w.Replay(from, func(seq uint64, m Mutation) error {
		seqs = append(seqs, seq)
		all = append(all, m)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return seqs, all
}

func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	w := openWAL(t, dir, Options{})
	batch := muts(7, 0)
	first, last, err := w.Append(batch)
	if err != nil {
		t.Fatal(err)
	}
	if first != 1 || last != 7 {
		t.Fatalf("seqs = [%d,%d], want [1,7]", first, last)
	}
	seqs, got := collect(t, w, 1)
	if len(got) != 7 {
		t.Fatalf("replayed %d records, want 7", len(got))
	}
	for i := range got {
		if seqs[i] != uint64(i+1) {
			t.Fatalf("seq[%d] = %d", i, seqs[i])
		}
		if got[i] != batch[i] {
			t.Fatalf("record %d = %+v, want %+v", i, got[i], batch[i])
		}
	}
	// Replay from the middle.
	seqs, _ = collect(t, w, 5)
	if len(seqs) != 3 || seqs[0] != 5 {
		t.Fatalf("partial replay = %v", seqs)
	}
	// Empty batch is a no-op.
	if _, _, err := w.Append(nil); err != nil {
		t.Fatal(err)
	}
	if w.NextSeq() != 8 {
		t.Fatalf("NextSeq = %d, want 8", w.NextSeq())
	}
}

func TestSequencePersistsAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	w := openWAL(t, dir, Options{})
	if _, _, err := w.Append(muts(5, 0)); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	w2 := openWAL(t, dir, Options{})
	if w2.NextSeq() != 6 {
		t.Fatalf("NextSeq after reopen = %d, want 6", w2.NextSeq())
	}
	first, last, err := w2.Append(muts(2, 5))
	if err != nil {
		t.Fatal(err)
	}
	if first != 6 || last != 7 {
		t.Fatalf("seqs after reopen = [%d,%d], want [6,7]", first, last)
	}
	seqs, _ := collect(t, w2, 1)
	if len(seqs) != 7 {
		t.Fatalf("replayed %d records, want 7", len(seqs))
	}
}

func TestTornTailRecovered(t *testing.T) {
	dir := t.TempDir()
	w := openWAL(t, dir, Options{})
	if _, _, err := w.Append(muts(3, 0)); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// Crash mid-append: chop bytes off the active segment.
	path := filepath.Join(dir, segmentName(1))
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, info.Size()-3); err != nil {
		t.Fatal(err)
	}

	w2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("torn tail must be repaired, got %v", err)
	}
	defer w2.Close()
	if w2.NextSeq() != 3 {
		t.Fatalf("NextSeq after tear = %d, want 3 (record 3 torn away)", w2.NextSeq())
	}
	seqs, _ := collect(t, w2, 1)
	if len(seqs) != 2 {
		t.Fatalf("replay after tear = %v, want 2 records", seqs)
	}
	// The log must accept appends again, reusing the torn sequence number.
	first, _, err := w2.Append(muts(1, 9))
	if err != nil {
		t.Fatal(err)
	}
	if first != 3 {
		t.Fatalf("append after repair got seq %d, want 3", first)
	}
}

func TestCorruptMiddleDetected(t *testing.T) {
	dir := t.TempDir()
	w := openWAL(t, dir, Options{})
	if _, _, err := w.Append(muts(4, 0)); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// Flip a byte inside the first record's payload.
	path := filepath.Join(dir, segmentName(1))
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte{0xFF}, frameHeader+2); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if _, err := Open(dir, Options{}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Open over corrupt middle = %v, want ErrCorrupt", err)
	}
}

func TestSegmentRotationAndTruncateBefore(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments force rotation on nearly every batch.
	w := openWAL(t, dir, Options{SegmentBytes: 128})
	for i := 0; i < 10; i++ {
		if _, _, err := w.Append(muts(3, i*3)); err != nil {
			t.Fatal(err)
		}
	}
	st := w.Stats()
	if st.Segments < 3 {
		t.Fatalf("rotation produced only %d segments", st.Segments)
	}
	if st.NextSeq != 31 {
		t.Fatalf("NextSeq = %d, want 31", st.NextSeq)
	}
	// All 30 records must replay across segment boundaries.
	seqs, _ := collect(t, w, 1)
	if len(seqs) != 30 {
		t.Fatalf("replayed %d records, want 30", len(seqs))
	}

	// Checkpoint at seq 15: every segment wholly below survives only if
	// it still holds records > 15.
	removed, err := w.TruncateBefore(15)
	if err != nil {
		t.Fatal(err)
	}
	if removed == 0 {
		t.Fatal("TruncateBefore removed nothing")
	}
	seqs, _ = collect(t, w, 16)
	if len(seqs) != 15 || seqs[0] != 16 || seqs[len(seqs)-1] != 30 {
		t.Fatalf("post-truncate replay = %v..%v (%d records)", seqs[0], seqs[len(seqs)-1], len(seqs))
	}
	// Reopen after truncation: sequence numbering continues.
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	w2 := openWAL(t, dir, Options{SegmentBytes: 128})
	if w2.NextSeq() != 31 {
		t.Fatalf("NextSeq after truncate+reopen = %d, want 31", w2.NextSeq())
	}
}

func TestTruncateNeverRemovesActiveSegment(t *testing.T) {
	dir := t.TempDir()
	w := openWAL(t, dir, Options{})
	if _, _, err := w.Append(muts(5, 0)); err != nil {
		t.Fatal(err)
	}
	if _, err := w.TruncateBefore(1 << 60); err != nil {
		t.Fatal(err)
	}
	if st := w.Stats(); st.Segments != 1 {
		t.Fatalf("active segment removed: %d segments left", st.Segments)
	}
	// Still appendable and replayable.
	if _, _, err := w.Append(muts(1, 9)); err != nil {
		t.Fatal(err)
	}
	seqs, _ := collect(t, w, 1)
	if len(seqs) != 6 {
		t.Fatalf("replay = %d records, want 6", len(seqs))
	}
}

func TestClosedOperations(t *testing.T) {
	w := openWAL(t, t.TempDir(), Options{})
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal("double close must be a no-op")
	}
	if _, _, err := w.Append(muts(1, 0)); !errors.Is(err, ErrClosed) {
		t.Fatalf("Append on closed = %v", err)
	}
	if err := w.Replay(1, func(uint64, Mutation) error { return nil }); !errors.Is(err, ErrClosed) {
		t.Fatalf("Replay on closed = %v", err)
	}
	if _, err := w.TruncateBefore(1); !errors.Is(err, ErrClosed) {
		t.Fatalf("TruncateBefore on closed = %v", err)
	}
}

func TestBadMutationRejected(t *testing.T) {
	w := openWAL(t, t.TempDir(), Options{})
	if _, _, err := w.Append([]Mutation{{Op: 0}}); !errors.Is(err, ErrBadMutation) {
		t.Fatalf("zero op accepted: %v", err)
	}
	if _, _, err := w.Append([]Mutation{{Op: 99}}); !errors.Is(err, ErrBadMutation) {
		t.Fatalf("unknown op accepted: %v", err)
	}
	// A rejected batch must not burn sequence numbers.
	if w.NextSeq() != 1 {
		t.Fatalf("NextSeq after rejected batch = %d, want 1", w.NextSeq())
	}
}

func TestReplayAbortPropagates(t *testing.T) {
	w := openWAL(t, t.TempDir(), Options{})
	if _, _, err := w.Append(muts(3, 0)); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("boom")
	err := w.Replay(1, func(seq uint64, m Mutation) error {
		if seq == 2 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("Replay error = %v, want boom", err)
	}
}

func TestCheckpointRoundTrip(t *testing.T) {
	dir := t.TempDir()
	if _, ok, err := LoadCheckpoint(dir); err != nil || ok {
		t.Fatalf("LoadCheckpoint on empty dir = ok=%v err=%v", ok, err)
	}
	want := Checkpoint{Epoch: 7, Seq: 1234}
	if err := SaveCheckpoint(dir, want); err != nil {
		t.Fatal(err)
	}
	got, ok, err := LoadCheckpoint(dir)
	if err != nil || !ok || got != want {
		t.Fatalf("LoadCheckpoint = %+v ok=%v err=%v, want %+v", got, ok, err, want)
	}
	// Overwrite atomically.
	want2 := Checkpoint{Epoch: 8, Seq: 2000}
	if err := SaveCheckpoint(dir, want2); err != nil {
		t.Fatal(err)
	}
	if got, _, _ := LoadCheckpoint(dir); got != want2 {
		t.Fatalf("checkpoint not overwritten: %+v", got)
	}
	// Corrupt marker is an error, not silently ignored.
	if err := os.WriteFile(filepath.Join(dir, checkpointFile), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := LoadCheckpoint(dir); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("garbage checkpoint = %v, want ErrCorrupt", err)
	}
}

func TestMutationEncodingProperty(t *testing.T) {
	// Every op round-trips through encode/decode including empty and
	// unicode fields and negative values.
	cases := []Mutation{
		{Op: OpUpsertTrust, Agent: "http://x/a", Peer: "http://x/b", Value: -1},
		{Op: OpUpsertTrust, Agent: "a", Peer: "b", Value: 0},
		{Op: OpDeleteTrust, Agent: "http://x/ü", Peer: "http://x/ö"},
		{Op: OpUpsertRating, Agent: "http://x/a", Product: "urn:isbn:9782000000015", Value: 0.125},
		{Op: OpDeleteRating, Agent: "http://x/a", Product: "p"},
		{Op: OpUpsertAgent, Agent: "http://x/a", Name: ""},
		{Op: OpUpsertAgent, Agent: "http://x/a", Name: "Ada Lovelace"},
	}
	for _, m := range cases {
		b, err := m.encode(nil)
		if err != nil {
			t.Fatalf("%+v: %v", m, err)
		}
		got, rest, err := decodeMutation(b)
		if err != nil || len(rest) != 0 || got != m {
			t.Fatalf("round trip %+v -> %+v (rest %d, err %v)", m, got, len(rest), err)
		}
	}
}
