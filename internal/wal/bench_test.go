package wal

import (
	"fmt"
	"testing"
)

// Write-path benchmarks for the durable log:
//
//	go test -bench=. -benchmem ./internal/wal/
//
// Append is dominated by the per-batch fsync, so the NoSync variants
// isolate the encoding + buffered-write cost and the batch-size sweep
// shows the group-commit amortization.

func BenchmarkAppendNoSync(b *testing.B) {
	for _, batch := range []int{1, 16, 256} {
		b.Run(fmt.Sprintf("batch=%d", batch), func(b *testing.B) {
			w, err := Open(b.TempDir(), Options{NoSync: true})
			if err != nil {
				b.Fatal(err)
			}
			defer w.Close()
			ms := muts(batch, 0)
			b.ReportAllocs()
			b.SetBytes(int64(batch))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := w.Append(ms); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkAppendFsync(b *testing.B) {
	for _, batch := range []int{1, 256} {
		b.Run(fmt.Sprintf("batch=%d", batch), func(b *testing.B) {
			w, err := Open(b.TempDir(), Options{})
			if err != nil {
				b.Fatal(err)
			}
			defer w.Close()
			ms := muts(batch, 0)
			b.ReportAllocs()
			b.SetBytes(int64(batch))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := w.Append(ms); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkReplay(b *testing.B) {
	const records = 10_000
	dir := b.TempDir()
	w, err := Open(dir, Options{NoSync: true})
	if err != nil {
		b.Fatal(err)
	}
	ms := muts(records, 0)
	if _, _, err := w.Append(ms); err != nil {
		b.Fatal(err)
	}
	if err := w.Close(); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.SetBytes(records)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w, err := Open(dir, Options{NoSync: true})
		if err != nil {
			b.Fatal(err)
		}
		n := 0
		if err := w.Replay(1, func(seq uint64, m Mutation) error { n++; return nil }); err != nil {
			b.Fatal(err)
		}
		if n != records {
			b.Fatalf("replayed %d, want %d", n, records)
		}
		w.Close()
	}
}
