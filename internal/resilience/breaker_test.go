package resilience

import (
	"context"
	"errors"
	"testing"
	"time"
)

// fakeClock is a manually advanced time source.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }
func newClock() *fakeClock                   { return &fakeClock{t: time.Unix(1_000_000, 0)} }
func testBreaker(clk *fakeClock, cfg BreakerConfig) *Breaker {
	return NewBreaker(cfg).WithClock(clk.now)
}

func TestBreakerTripsOnFailureRate(t *testing.T) {
	clk := newClock()
	b := testBreaker(clk, BreakerConfig{Window: 8, MinSamples: 4, FailureThreshold: 0.5, OpenFor: time.Minute})

	// Three failures are below MinSamples: still closed.
	for i := 0; i < 3; i++ {
		if !b.Allow() {
			t.Fatal("closed breaker must allow")
		}
		b.Record(false)
	}
	if b.State() != Closed {
		t.Fatalf("state = %v before MinSamples, want closed", b.State())
	}
	// Fourth failure reaches MinSamples at 100% failure rate: trips.
	b.Allow()
	b.Record(false)
	if b.State() != Open {
		t.Fatalf("state = %v, want open", b.State())
	}
	if b.Allow() {
		t.Fatal("open breaker must reject")
	}
}

func TestBreakerStaysClosedOnMixedOutcomes(t *testing.T) {
	clk := newClock()
	b := testBreaker(clk, BreakerConfig{Window: 8, MinSamples: 4, FailureThreshold: 0.5, OpenFor: time.Minute})
	// Alternate success/failure: 50% threshold not *reached* until rate ≥ 0.5;
	// 1 failure in 4 is 0.25 — healthy.
	outcomes := []bool{true, true, false, true, true, false, true, true}
	for _, ok := range outcomes {
		if !b.Allow() {
			t.Fatal("closed breaker must allow")
		}
		b.Record(ok)
	}
	if b.State() != Closed {
		t.Fatalf("state = %v, want closed at 25%% failures", b.State())
	}
}

func TestBreakerWindowSlides(t *testing.T) {
	clk := newClock()
	b := testBreaker(clk, BreakerConfig{Window: 4, MinSamples: 4, FailureThreshold: 0.75, OpenFor: time.Minute})
	// Two early failures scroll out of the 4-wide window as successes
	// arrive; the rate never reaches 0.75 afterwards.
	for _, ok := range []bool{false, false, true, true, true, true, false, true} {
		b.Allow()
		b.Record(ok)
	}
	if b.State() != Closed {
		t.Fatalf("state = %v, want closed (old failures slid out)", b.State())
	}
}

func TestBreakerHalfOpenRecovery(t *testing.T) {
	clk := newClock()
	b := testBreaker(clk, BreakerConfig{Window: 4, MinSamples: 2, FailureThreshold: 0.5, OpenFor: 30 * time.Second, HalfOpenProbes: 2})
	for i := 0; i < 2; i++ {
		b.Allow()
		b.Record(false)
	}
	if b.State() != Open {
		t.Fatal("breaker should be open")
	}

	// Before the cooldown: rejected.
	clk.advance(29 * time.Second)
	if b.Allow() {
		t.Fatal("still open before cooldown elapses")
	}
	// After the cooldown: half-open, admits exactly HalfOpenProbes probes.
	clk.advance(2 * time.Second)
	if !b.Allow() || !b.Allow() {
		t.Fatal("half-open must admit probes")
	}
	if b.Allow() {
		t.Fatal("half-open must cap concurrent probes")
	}
	// Two clean probes close it.
	b.Record(true)
	b.Record(true)
	if b.State() != Closed {
		t.Fatalf("state = %v, want closed after clean probes", b.State())
	}
	if !b.Allow() {
		t.Fatal("closed breaker must allow")
	}
	b.Record(true)
}

func TestBreakerHalfOpenFailureReopens(t *testing.T) {
	clk := newClock()
	b := testBreaker(clk, BreakerConfig{Window: 4, MinSamples: 2, FailureThreshold: 0.5, OpenFor: 10 * time.Second, HalfOpenProbes: 1})
	b.Allow()
	b.Record(false)
	b.Allow()
	b.Record(false)
	if b.State() != Open {
		t.Fatal("breaker should be open")
	}
	clk.advance(11 * time.Second)
	if !b.Allow() {
		t.Fatal("half-open must admit a probe")
	}
	b.Record(false)
	if b.State() != Open {
		t.Fatalf("state = %v, want re-opened after failed probe", b.State())
	}
	// The re-open restarts the cooldown.
	clk.advance(9 * time.Second)
	if b.Allow() {
		t.Fatal("re-opened breaker must reject during fresh cooldown")
	}
	clk.advance(2 * time.Second)
	if !b.Allow() {
		t.Fatal("probe after second cooldown")
	}
	b.Record(true)
}

func TestGroupPerKeyIsolation(t *testing.T) {
	clk := newClock()
	g := NewGroup(BreakerConfig{Window: 4, MinSamples: 2, FailureThreshold: 0.5, OpenFor: time.Minute}).WithClock(clk.now)
	bad, good := g.For("dead.example"), g.For("fine.example")
	if bad == good {
		t.Fatal("distinct keys must get distinct breakers")
	}
	for i := 0; i < 2; i++ {
		bad.Allow()
		bad.Record(false)
		good.Allow()
		good.Record(true)
	}
	if bad.State() != Open {
		t.Fatal("dead host breaker should be open")
	}
	if good.State() != Closed {
		t.Fatal("healthy host breaker must stay closed")
	}
	states := g.States()
	if states["dead.example"] != Open || states["fine.example"] != Closed {
		t.Fatalf("States() = %v", states)
	}
	if g.For("dead.example") != bad {
		t.Fatal("For must memoize per key")
	}
}

func TestRetryStopsOnPermanentError(t *testing.T) {
	perm := errors.New("permanent")
	calls := 0
	retries, err := Retry(context.Background(), 5, time.Microsecond, func() (bool, error) {
		calls++
		return false, perm
	})
	if !errors.Is(err, perm) || calls != 1 || retries != 0 {
		t.Fatalf("calls=%d retries=%d err=%v", calls, retries, err)
	}
}

func TestRetryBoundedAttempts(t *testing.T) {
	transient := errors.New("transient")
	calls := 0
	retries, err := Retry(context.Background(), 3, time.Microsecond, func() (bool, error) {
		calls++
		return true, transient
	})
	if !errors.Is(err, transient) || calls != 3 || retries != 2 {
		t.Fatalf("calls=%d retries=%d err=%v", calls, retries, err)
	}
}

func TestRetryEventualSuccess(t *testing.T) {
	calls := 0
	retries, err := Retry(context.Background(), 4, time.Microsecond, func() (bool, error) {
		calls++
		if calls < 3 {
			return true, errors.New("flaky")
		}
		return false, nil
	})
	if err != nil || calls != 3 || retries != 2 {
		t.Fatalf("calls=%d retries=%d err=%v", calls, retries, err)
	}
}

func TestRetryHonorsContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	calls := 0
	_, err := Retry(ctx, 10, time.Hour, func() (bool, error) {
		calls++
		return true, errors.New("transient")
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if calls != 1 {
		t.Fatalf("calls = %d, want 1 (cancelled before backoff)", calls)
	}
}

func TestJitterRange(t *testing.T) {
	base := 100 * time.Millisecond
	for i := 0; i < 200; i++ {
		d := Jitter(base)
		if d < base/2 || d >= base+base/2 {
			t.Fatalf("jitter %v outside [%v, %v)", d, base/2, base+base/2)
		}
	}
	if d := Jitter(0); d < DefaultBackoff/2 {
		t.Fatalf("zero base must default, got %v", d)
	}
}
