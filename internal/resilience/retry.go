package resilience

import (
	"context"
	"math/rand/v2"
	"time"
)

// DefaultBackoff is the base retry delay used when none is given.
const DefaultBackoff = 500 * time.Millisecond

// Jitter spreads a backoff delay uniformly over [0.5, 1.5) of base so
// retrying clients do not hammer a recovering host in lockstep. A
// non-positive base takes DefaultBackoff.
func Jitter(base time.Duration) time.Duration {
	if base <= 0 {
		base = DefaultBackoff
	}
	return base/2 + time.Duration(rand.Int64N(int64(base)))
}

// Retry runs op up to attempts times, sleeping a jittered exponential
// backoff (base, 2·base, 4·base, ...) between tries. op reports whether
// its failure is transient; permanent failures and successes return
// immediately. The context bounds the whole loop including backoff
// sleeps. retries is the number of re-attempts performed (0 when the
// first try settled it).
func Retry(ctx context.Context, attempts int, base time.Duration, op func() (transient bool, err error)) (retries int, err error) {
	if attempts < 1 {
		attempts = 1
	}
	delay := base
	for i := 0; ; i++ {
		transient, err := op()
		if err == nil || !transient || i+1 >= attempts {
			return i, err
		}
		select {
		case <-ctx.Done():
			return i, ctx.Err()
		case <-time.After(Jitter(delay)):
		}
		delay *= 2
	}
}
