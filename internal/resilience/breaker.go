// Package resilience provides the failure-isolation primitives the open
// Semantic Web demands: per-host circuit breakers and bounded retry with
// jittered backoff.
//
// The paper's substrate is adversarial by construction — agents publish
// machine-readable homepages that can be slow, garbage, or gone (§2
// "security", §4.1 freshness), and the distributed trust-aware systems
// swrec descends from treat peer unavailability as the normal case, not
// the exception. A crawler that keeps hammering a dead host pins its
// workers and starves every healthy host behind it; a breaker converts
// that slow collapse into a fast, observable rejection that heals itself
// once the host recovers.
//
// State machine (the classic three states):
//
//	closed    requests flow; outcomes feed a rolling sample window. Once
//	          at least MinSamples outcomes are recorded and the failure
//	          rate reaches FailureThreshold, the breaker opens.
//	open      requests are rejected outright (Allow returns false) until
//	          OpenFor has elapsed, then the breaker half-opens.
//	half-open a limited number of probe requests pass through. Probes
//	          that all succeed close the breaker (window reset); any
//	          probe failure re-opens it for another OpenFor.
//
// Breakers are deterministic given a deterministic clock: tests inject
// one via WithClock. Transitions and rejections are exported process-wide
// under the "swrec_resilience" expvar map.
package resilience

import (
	"expvar"
	"sync"
	"time"
)

// stats aggregates breaker counters across the process: opened, reopened,
// closed, half_open, rejected.
var stats = expvar.NewMap("swrec_resilience")

// State is a breaker's position in the closed→open→half-open machine.
type State int

const (
	// Closed is the healthy state: requests flow freely.
	Closed State = iota
	// Open is the tripped state: requests are rejected without work.
	Open
	// HalfOpen is the probing state: a bounded number of requests pass.
	HalfOpen
)

// String names the state for stats and logs.
func (s State) String() string {
	switch s {
	case Closed:
		return "closed"
	case Open:
		return "open"
	case HalfOpen:
		return "half-open"
	default:
		return "unknown"
	}
}

// BreakerConfig tunes one breaker. Zero values select defaults suited to
// crawl fetches: trip at a 50% failure rate over the last 16 outcomes
// (once 8 are recorded), stay open 30s, close after 2 clean probes.
type BreakerConfig struct {
	// FailureThreshold is the failure rate in (0,1] that trips a closed
	// breaker (default 0.5).
	FailureThreshold float64
	// Window is the number of most recent outcomes considered (default 16).
	Window int
	// MinSamples is the minimum number of recorded outcomes before the
	// rate is trusted — a single failed first fetch must not trip the
	// breaker (default Window/2).
	MinSamples int
	// OpenFor is how long a tripped breaker rejects before probing again
	// (default 30s).
	OpenFor time.Duration
	// HalfOpenProbes is how many consecutive probe successes close a
	// half-open breaker; any probe failure re-opens it (default 2).
	HalfOpenProbes int
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.FailureThreshold <= 0 || c.FailureThreshold > 1 {
		c.FailureThreshold = 0.5
	}
	if c.Window <= 0 {
		c.Window = 16
	}
	if c.MinSamples <= 0 {
		c.MinSamples = c.Window / 2
	}
	if c.MinSamples > c.Window {
		c.MinSamples = c.Window
	}
	if c.OpenFor <= 0 {
		c.OpenFor = 30 * time.Second
	}
	if c.HalfOpenProbes <= 0 {
		c.HalfOpenProbes = 2
	}
	return c
}

// Breaker is one circuit breaker. All methods are safe for concurrent
// use. The zero value is not usable; use NewBreaker.
type Breaker struct {
	cfg BreakerConfig
	now func() time.Time

	mu       sync.Mutex
	state    State
	window   []bool // ring of outcomes, true = failure
	head     int    // next write position in window
	samples  int    // outcomes recorded (≤ len(window))
	failures int    // failures currently in the window
	openedAt time.Time
	inFlight int // probes admitted while half-open
	probeOK  int // consecutive probe successes while half-open
}

// NewBreaker creates a breaker with the given configuration.
func NewBreaker(cfg BreakerConfig) *Breaker {
	cfg = cfg.withDefaults()
	return &Breaker{cfg: cfg, now: time.Now, window: make([]bool, cfg.Window)}
}

// WithClock substitutes the breaker's time source (tests only). Returns
// the breaker for chaining.
func (b *Breaker) WithClock(now func() time.Time) *Breaker {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.now = now
	return b
}

// State reports the breaker's current state, advancing open→half-open if
// the cooldown has elapsed.
func (b *Breaker) State() State {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.tickLocked()
	return b.state
}

// tickLocked advances open→half-open once OpenFor has elapsed.
func (b *Breaker) tickLocked() {
	if b.state == Open && b.now().Sub(b.openedAt) >= b.cfg.OpenFor {
		b.state = HalfOpen
		b.inFlight = 0
		b.probeOK = 0
		stats.Add("half_open", 1)
	}
}

// Allow reports whether a request may proceed. A half-open breaker admits
// at most HalfOpenProbes concurrent probes. Every admitted request must
// be answered with exactly one Record call.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.tickLocked()
	switch b.state {
	case Closed:
		return true
	case HalfOpen:
		if b.inFlight < b.cfg.HalfOpenProbes {
			b.inFlight++
			return true
		}
		stats.Add("rejected", 1)
		return false
	default: // Open
		stats.Add("rejected", 1)
		return false
	}
}

// Record feeds one admitted request's outcome back into the breaker.
func (b *Breaker) Record(success bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case HalfOpen:
		if b.inFlight > 0 {
			b.inFlight--
		}
		if !success {
			b.state = Open
			b.openedAt = b.now()
			stats.Add("reopened", 1)
			return
		}
		b.probeOK++
		if b.probeOK >= b.cfg.HalfOpenProbes {
			// Recovered: forget the failure history.
			b.state = Closed
			b.samples, b.failures, b.head = 0, 0, 0
			stats.Add("closed", 1)
		}
	case Closed:
		if b.samples == len(b.window) && b.window[b.head] {
			b.failures-- // the outcome falling out of the window
		}
		b.window[b.head] = !success
		b.head = (b.head + 1) % len(b.window)
		if b.samples < len(b.window) {
			b.samples++
		}
		if !success {
			b.failures++
		}
		if b.samples >= b.cfg.MinSamples &&
			float64(b.failures)/float64(b.samples) >= b.cfg.FailureThreshold {
			b.state = Open
			b.openedAt = b.now()
			stats.Add("opened", 1)
		}
	default:
		// Open: a straggler recording after the trip; ignored.
	}
}

// Group manages one breaker per key (typically per host), created
// lazily with a shared configuration. Safe for concurrent use.
type Group struct {
	cfg BreakerConfig
	now func() time.Time

	mu sync.Mutex
	m  map[string]*Breaker
}

// NewGroup creates a breaker group.
func NewGroup(cfg BreakerConfig) *Group {
	return &Group{cfg: cfg.withDefaults(), m: make(map[string]*Breaker)}
}

// WithClock substitutes the time source used by breakers the group
// creates from now on (tests only). Returns the group for chaining.
func (g *Group) WithClock(now func() time.Time) *Group {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.now = now
	return g
}

// For returns the breaker for key, creating it on first use.
func (g *Group) For(key string) *Breaker {
	g.mu.Lock()
	defer g.mu.Unlock()
	b, ok := g.m[key]
	if !ok {
		b = NewBreaker(g.cfg)
		if g.now != nil {
			b.now = g.now
		}
		g.m[key] = b
	}
	return b
}

// States snapshots every breaker's current state, keyed as For was
// called — the observability hook behind crawler Stats and expvar.
func (g *Group) States() map[string]State {
	g.mu.Lock()
	keys := make([]string, 0, len(g.m))
	breakers := make([]*Breaker, 0, len(g.m))
	for k, b := range g.m {
		keys = append(keys, k)
		breakers = append(breakers, b)
	}
	g.mu.Unlock()
	out := make(map[string]State, len(keys))
	for i, k := range keys {
		out[k] = breakers[i].State()
	}
	return out
}
