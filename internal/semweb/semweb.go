// Package semweb simulates the decentralized publication side of the
// paper's architecture (§2, §4): "all information about agents a_i, their
// trust relationships t_i and ratings r_i [is] stored in machine-readable
// homepages distributed throughout the Web", while the taxonomy and the
// product catalog "hold globally and therefore offer public
// accessibility".
//
// Two pieces:
//
//   - Site is an http.Handler publishing one community: per-agent FOAF
//     homepages under /people/<name>, the catalog under /catalog.nt and
//     the taxonomy under /taxonomy.nt, all as N-Triples.
//   - Internet is a virtual network mapping host names to handlers and
//     exposing an *http.Client whose transport dispatches in-process. It
//     lets tests and experiments run a many-host "Semantic Web" without
//     sockets, while the same Site serves real listeners in cmd/crawld.
//
// The substitution is documented in DESIGN.md: the real deployment used
// FOAF homepages and BLAM!-annotated weblogs; this package preserves the
// code path (publish → HTTP fetch → RDF parse → local materialization).
package semweb

import (
	"crypto/sha256"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"

	"swrec/internal/foaf"
	"swrec/internal/model"
	"swrec/internal/rdf"
	"swrec/internal/weblog"
)

// Media types served. N-Triples is the default; Turtle and RDF/XML are
// served when the client asks for them via Accept.
const (
	ContentTypeNTriples = "application/n-triples"
	ContentTypeTurtle   = "text/turtle"
	ContentTypeRDFXML   = "application/rdf+xml"
)

// Site publishes one community as a set of Semantic Web documents.
// Agent IDs in the community must be of the form
// "http://<host>/people/<name>" for their homepages to be routable.
type Site struct {
	host string
	comm *model.Community //nolint:snapshotpin -- the simulated site's authoritative source community; it feeds crawls and never reads from an engine snapshot
	// Robots, when non-empty, is served verbatim as /robots.txt; by
	// default the site serves an allow-all file. Tests and experiments
	// use it to verify the crawler's robots compliance.
	Robots string
}

// NewSite creates a site for the community under the given virtual host
// (e.g. "swrec.example").
func NewSite(host string, comm *model.Community) *Site {
	return &Site{host: host, comm: comm}
}

// Host returns the site's virtual host name.
func (s *Site) Host() string { return s.host }

// Community returns the community the site publishes. Mutations are
// reflected by subsequent requests (documents are rendered on demand),
// with fresh ETags — the "weblog update" scenario of §4.
func (s *Site) Community() *model.Community { return s.comm }

// BaseURL returns "http://<host>".
func (s *Site) BaseURL() string { return "http://" + s.host }

// AgentURL returns the homepage URL (and thus the AgentID) for a person
// name on this site.
func (s *Site) AgentURL(name string) model.AgentID {
	return model.AgentID(s.BaseURL() + "/people/" + name)
}

// TaxonomyURL returns the site's public taxonomy document URL.
func (s *Site) TaxonomyURL() string { return s.BaseURL() + "/taxonomy.nt" }

// CatalogURL returns the site's public catalog document URL.
func (s *Site) CatalogURL() string { return s.BaseURL() + "/catalog.nt" }

// ServeHTTP implements http.Handler. Documents carry strong ETags (a
// hash of the serialized content); a matching If-None-Match yields 304
// Not Modified, which is how re-crawls "ensure data freshness" (§4.1)
// without re-transferring unchanged homepages. Clients sending
// "Accept: text/turtle" receive Turtle instead of N-Triples.
func (s *Site) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet && r.Method != http.MethodHead {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	var g *rdf.Graph
	switch {
	case r.URL.Path == "/robots.txt":
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if s.Robots != "" {
			fmt.Fprint(w, s.Robots)
		} else {
			fmt.Fprint(w, "User-agent: *\nDisallow:\n")
		}
		return
	case r.URL.Path == "/taxonomy.nt":
		if s.comm.Taxonomy() == nil {
			http.NotFound(w, r)
			return
		}
		g = foaf.MarshalTaxonomy(s.comm.Taxonomy())
	case r.URL.Path == "/catalog.nt":
		g = foaf.MarshalCatalog(s.comm)
	case strings.HasPrefix(r.URL.Path, "/people/"):
		id := model.AgentID(s.BaseURL() + r.URL.Path)
		a := s.comm.Agent(id)
		if a == nil {
			http.NotFound(w, r)
			return
		}
		g = foaf.MarshalAgent(a)
	case strings.HasPrefix(r.URL.Path, "/blog/"):
		// The human-readable weblog (§4): implicit votes as hyperlinks,
		// FOAF homepage advertised for auto-discovery.
		name := strings.TrimPrefix(r.URL.Path, "/blog/")
		a := s.comm.Agent(s.AgentURL(name))
		if a == nil {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		fmt.Fprint(w, weblog.Render(a, s.comm))
		return
	default:
		http.NotFound(w, r)
		return
	}
	s.serveGraph(w, r, g)
}

// BlogURL returns the weblog URL for a person name on this site.
func (s *Site) BlogURL(name string) string { return s.BaseURL() + "/blog/" + name }

// serveGraph negotiates the syntax, sets the ETag, and honors
// If-None-Match.
func (s *Site) serveGraph(w http.ResponseWriter, r *http.Request, g *rdf.Graph) {
	doc := g.Marshal()
	ctype := ContentTypeNTriples
	accept := r.Header.Get("Accept")
	switch {
	case strings.Contains(accept, ContentTypeTurtle):
		doc = g.MarshalTurtle()
		ctype = ContentTypeTurtle
	case strings.Contains(accept, ContentTypeRDFXML):
		// The type FOAF auto-discovery advertises (§4).
		xmlDoc, err := g.MarshalRDFXML()
		if err != nil {
			http.Error(w, "cannot serialize as RDF/XML", http.StatusNotAcceptable)
			return
		}
		doc, ctype = xmlDoc, ContentTypeRDFXML
	}
	etag := fmt.Sprintf(`"%x"`, sha256.Sum256([]byte(doc)))
	w.Header().Set("ETag", etag)
	w.Header().Set("Content-Type", ctype)
	if r.Header.Get("If-None-Match") == etag {
		w.WriteHeader(http.StatusNotModified)
		return
	}
	fmt.Fprint(w, doc)
}

// Internet is a virtual network of named hosts. The zero value is ready
// to use. It is safe for concurrent use.
type Internet struct {
	mu    sync.RWMutex
	hosts map[string]http.Handler
}

// Register binds a handler to a virtual host name, replacing any previous
// binding.
func (in *Internet) Register(host string, h http.Handler) {
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.hosts == nil {
		in.hosts = make(map[string]http.Handler)
	}
	in.hosts[host] = h
}

// RegisterSite binds a site under its own host.
func (in *Internet) RegisterSite(s *Site) { in.Register(s.Host(), s) }

// RoundTrip dispatches the request to the registered handler in-process.
// Unknown hosts yield a synthetic 502, mirroring an unreachable server —
// crawlers must tolerate those (§2: no superordinate authority guarantees
// availability).
func (in *Internet) RoundTrip(req *http.Request) (*http.Response, error) {
	in.mu.RLock()
	h := in.hosts[req.URL.Host]
	in.mu.RUnlock()
	if h == nil {
		rec := httptest.NewRecorder()
		http.Error(rec, "host unreachable: "+req.URL.Host, http.StatusBadGateway)
		return rec.Result(), nil
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	resp := rec.Result()
	resp.Request = req
	return resp, nil
}

// Client returns an *http.Client whose transport is this virtual network.
func (in *Internet) Client() *http.Client {
	return &http.Client{Transport: in}
}
