package semweb

import (
	"io"
	"net/http"
	"strings"
	"testing"

	"swrec/internal/foaf"
	"swrec/internal/model"
	"swrec/internal/rdf"
	"swrec/internal/taxonomy"
)

func testSite(t *testing.T) *Site {
	t.Helper()
	tax := taxonomy.Fig1()
	c := model.NewCommunity(tax)
	fic, _ := tax.Lookup("Books/Fiction")
	c.AddProduct(model.Product{ID: "urn:isbn:9780553380958", Title: "Snow Crash",
		Topics: []taxonomy.Topic{fic}})
	s := NewSite("swrec.example", c)
	alice, bob := s.AgentURL("alice"), s.AgentURL("bob")
	if err := c.SetTrust(alice, bob, 0.9); err != nil {
		t.Fatal(err)
	}
	if err := c.SetRating(alice, "urn:isbn:9780553380958", 1); err != nil {
		t.Fatal(err)
	}
	c.Agent(alice).Name = "Alice"
	return s
}

func get(t *testing.T, client *http.Client, url string) (int, string) {
	t.Helper()
	resp, err := client.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

func TestSiteServesHomepage(t *testing.T) {
	s := testSite(t)
	var in Internet
	in.RegisterSite(s)
	client := in.Client()

	code, body := get(t, client, string(s.AgentURL("alice")))
	if code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	g, err := rdf.ParseString(body)
	if err != nil {
		t.Fatal(err)
	}
	h, err := foaf.Unmarshal(g)
	if err != nil {
		t.Fatal(err)
	}
	if h.Name != "Alice" || len(h.Trust) != 1 || len(h.Ratings) != 1 {
		t.Fatalf("homepage = %+v", h)
	}
	if h.Trust[0].Dst != s.AgentURL("bob") {
		t.Fatalf("trust target = %s", h.Trust[0].Dst)
	}
}

func TestSiteServesGlobals(t *testing.T) {
	s := testSite(t)
	var in Internet
	in.RegisterSite(s)
	client := in.Client()

	code, body := get(t, client, s.TaxonomyURL())
	if code != http.StatusOK {
		t.Fatalf("taxonomy status = %d", code)
	}
	g, err := rdf.ParseString(body)
	if err != nil {
		t.Fatal(err)
	}
	tax, err := foaf.UnmarshalTaxonomy(g)
	if err != nil {
		t.Fatal(err)
	}
	if tax.Len() != taxonomy.Fig1().Len() {
		t.Fatalf("taxonomy Len = %d", tax.Len())
	}

	code, body = get(t, client, s.CatalogURL())
	if code != http.StatusOK {
		t.Fatalf("catalog status = %d", code)
	}
	if !strings.Contains(body, "Snow Crash") {
		t.Fatal("catalog missing product")
	}
}

func TestSiteNotFoundAndMethods(t *testing.T) {
	s := testSite(t)
	var in Internet
	in.RegisterSite(s)
	client := in.Client()

	if code, _ := get(t, client, s.BaseURL()+"/people/ghost"); code != http.StatusNotFound {
		t.Fatalf("unknown person status = %d", code)
	}
	if code, _ := get(t, client, s.BaseURL()+"/random"); code != http.StatusNotFound {
		t.Fatalf("unknown path status = %d", code)
	}
	resp, err := client.Post(string(s.AgentURL("alice")), "text/plain", strings.NewReader("x"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST status = %d", resp.StatusCode)
	}
}

func TestSiteWithoutTaxonomy(t *testing.T) {
	c := model.NewCommunity(nil)
	s := NewSite("bare.example", c)
	var in Internet
	in.RegisterSite(s)
	if code, _ := get(t, in.Client(), s.TaxonomyURL()); code != http.StatusNotFound {
		t.Fatalf("taxonomy-less site status = %d", code)
	}
}

func TestSiteTurtleNegotiation(t *testing.T) {
	s := testSite(t)
	var in Internet
	in.RegisterSite(s)
	client := in.Client()

	req, err := http.NewRequest(http.MethodGet, string(s.AgentURL("alice")), nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Accept", ContentTypeTurtle)
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if got := resp.Header.Get("Content-Type"); got != ContentTypeTurtle {
		t.Fatalf("Content-Type = %q", got)
	}
	if !strings.Contains(string(body), "@prefix foaf:") {
		t.Fatalf("not Turtle: %q", body)
	}
	g, err := rdf.ParseTurtle(string(body))
	if err != nil {
		t.Fatal(err)
	}
	h, err := foaf.Unmarshal(g)
	if err != nil {
		t.Fatal(err)
	}
	if h.Name != "Alice" || len(h.Trust) != 1 {
		t.Fatalf("turtle homepage = %+v", h)
	}
}

func TestSiteRDFXMLNegotiation(t *testing.T) {
	s := testSite(t)
	var in Internet
	in.RegisterSite(s)

	req, err := http.NewRequest(http.MethodGet, string(s.AgentURL("alice")), nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Accept", ContentTypeRDFXML)
	resp, err := in.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if got := resp.Header.Get("Content-Type"); got != ContentTypeRDFXML {
		t.Fatalf("Content-Type = %q", got)
	}
	g, err := rdf.ParseRDFXML(string(body))
	if err != nil {
		t.Fatalf("%v\n%s", err, body)
	}
	h, err := foaf.Unmarshal(g)
	if err != nil {
		t.Fatal(err)
	}
	if h.Name != "Alice" || len(h.Trust) != 1 || len(h.Ratings) != 1 {
		t.Fatalf("rdfxml homepage = %+v", h)
	}
	// ParseDocument auto-detects the XML form too (crawler path).
	if _, err := rdf.ParseDocument(string(body)); err != nil {
		t.Fatal(err)
	}
}

func TestSiteETagAndNotModified(t *testing.T) {
	s := testSite(t)
	var in Internet
	in.RegisterSite(s)
	client := in.Client()
	url := string(s.AgentURL("alice"))

	resp1, err := client.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp1.Body)
	resp1.Body.Close()
	etag := resp1.Header.Get("ETag")
	if etag == "" {
		t.Fatal("no ETag served")
	}

	req, _ := http.NewRequest(http.MethodGet, url, nil)
	req.Header.Set("If-None-Match", etag)
	resp2, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusNotModified {
		t.Fatalf("status = %d, want 304", resp2.StatusCode)
	}

	// Mutating the community invalidates the ETag.
	if err := s.Community().SetTrust(s.AgentURL("alice"), s.AgentURL("dora"), 0.3); err != nil {
		t.Fatal(err)
	}
	resp3, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp3.Body.Close()
	if resp3.StatusCode != http.StatusOK {
		t.Fatalf("status after mutation = %d, want 200", resp3.StatusCode)
	}
	if resp3.Header.Get("ETag") == etag {
		t.Fatal("ETag unchanged after mutation")
	}
}

func TestInternetUnknownHost(t *testing.T) {
	var in Internet
	code, _ := get(t, in.Client(), "http://nowhere.example/x")
	if code != http.StatusBadGateway {
		t.Fatalf("unknown host status = %d, want 502", code)
	}
}

func TestSiteHeadRequest(t *testing.T) {
	s := testSite(t)
	var in Internet
	in.RegisterSite(s)
	req, err := http.NewRequest(http.MethodHead, string(s.AgentURL("alice")), nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := in.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("HEAD status = %d", resp.StatusCode)
	}
	if resp.Header.Get("ETag") == "" {
		t.Fatal("HEAD must carry the ETag")
	}
}

func TestInternetRegisterReplaces(t *testing.T) {
	var in Internet
	in.Register("h.example", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("v1"))
	}))
	in.Register("h.example", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("v2"))
	}))
	if _, body := get(t, in.Client(), "http://h.example/"); body != "v2" {
		t.Fatalf("body = %q, want v2", body)
	}
}

func TestSiteURLHelpers(t *testing.T) {
	s := NewSite("h.example", model.NewCommunity(nil))
	if s.BaseURL() != "http://h.example" {
		t.Fatalf("BaseURL = %q", s.BaseURL())
	}
	if s.TaxonomyURL() != "http://h.example/taxonomy.nt" ||
		s.CatalogURL() != "http://h.example/catalog.nt" {
		t.Fatal("global URLs broken")
	}
	if s.BlogURL("bob") != "http://h.example/blog/bob" {
		t.Fatalf("BlogURL = %q", s.BlogURL("bob"))
	}
	if s.AgentURL("bob") != "http://h.example/people/bob" {
		t.Fatalf("AgentURL = %q", s.AgentURL("bob"))
	}
	if s.Host() != "h.example" || s.Community() == nil {
		t.Fatal("accessors broken")
	}
}

func TestInternetMultipleHosts(t *testing.T) {
	// A genuinely decentralized web: two communities on two hosts whose
	// agents reference each other across hosts.
	c1 := model.NewCommunity(nil)
	c2 := model.NewCommunity(nil)
	s1 := NewSite("one.example", c1)
	s2 := NewSite("two.example", c2)
	if err := c1.SetTrust(s1.AgentURL("a"), s2.AgentURL("b"), 0.8); err != nil {
		t.Fatal(err)
	}
	c2.AddAgent(s2.AgentURL("b")).Name = "B"

	var in Internet
	in.RegisterSite(s1)
	in.RegisterSite(s2)
	client := in.Client()

	code, body := get(t, client, string(s1.AgentURL("a")))
	if code != 200 || !strings.Contains(body, "two.example/people/b") {
		t.Fatalf("cross-host trust edge missing: %d %q", code, body)
	}
	code, body = get(t, client, string(s2.AgentURL("b")))
	if code != 200 || !strings.Contains(body, `"B"`) {
		t.Fatalf("second host broken: %d %q", code, body)
	}
}
