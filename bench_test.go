// Benchmarks, one (or more) per experiment in DESIGN.md's index (E1–E9),
// plus the ablation benches of DESIGN.md §5. Run with:
//
//	go test -bench=. -benchmem
//
// The E-benchmarks measure the hot path of each experiment at small scale;
// cmd/experiments regenerates the full tables.
package swrec_test

import (
	"context"
	"io"
	"math/rand"
	"sync"
	"testing"

	"swrec"
	"swrec/internal/cf"
	"swrec/internal/core"
	"swrec/internal/crawler"
	"swrec/internal/datagen"
	"swrec/internal/eval"
	"swrec/internal/experiments"
	"swrec/internal/foaf"
	"swrec/internal/model"
	"swrec/internal/profile"
	"swrec/internal/rdf"
	"swrec/internal/semweb"
	"swrec/internal/sparse"
	"swrec/internal/stereotype"
	"swrec/internal/taxonomy"
	"swrec/internal/trust"
	"swrec/internal/weblog"
)

// benchCommunity lazily builds one shared small community for benches.
var benchCommunity = sync.OnceValue(func() *model.Community {
	comm, _ := datagen.Generate(datagen.SmallScale())
	return comm
})

// benchActive returns a well-connected agent of the shared community.
var benchActive = sync.OnceValue(func() model.AgentID {
	comm := benchCommunity()
	var best model.AgentID
	deg := -1
	for _, id := range comm.Agents() {
		if d := len(comm.Agent(id).Trust); d > deg {
			deg = d
			best = id
		}
	}
	return best
})

// --- E1: taxonomy profile generation (Example 1 propagation) ---

func BenchmarkE1PropagateLeaf(b *testing.B) {
	tax := taxonomy.Fig1()
	alg, _ := tax.Lookup("Books/Science/Mathematics/Pure/Algebra")
	g := profile.New(tax)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		out := sparse.New(8)
		g.PropagateLeaf(out, alg, 50)
	}
}

func BenchmarkE1ProfileGeneration(b *testing.B) {
	comm := benchCommunity()
	g := profile.New(comm.Taxonomy())
	active := benchActive()
	a := comm.Agent(active)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g.Profile(a, comm)
	}
}

// --- E2: trust vs similarity correlation measurement ---

func BenchmarkE2TrustSimilarityCorrelation(b *testing.B) {
	comm := benchCommunity()
	f, err := cf.New(comm, cf.Options{Measure: cf.Cosine, Representation: cf.Taxonomy})
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eval.TrustVsRandomSimilarity(comm, f, 100, rng)
	}
}

// --- E3: trust metrics ---

func BenchmarkE3Appleseed(b *testing.B) {
	comm := benchCommunity()
	net := trust.FromCommunity(comm)
	src := benchActive()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := trust.Appleseed(net, src, trust.AppleseedOptions{MaxNodes: 200}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE3Advogato(b *testing.B) {
	comm := benchCommunity()
	net := trust.FromCommunity(comm)
	src := benchActive()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := trust.Advogato(net, src, trust.AdvogatoOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE3PathTrust(b *testing.B) {
	comm := benchCommunity()
	net := trust.FromCommunity(comm)
	src := benchActive()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := trust.PathTrust(net, src, trust.PathTrustOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E4: attack resistance (one full injected-attack evaluation) ---

func BenchmarkE4AttackResistance(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg := datagen.SmallScale()
		comm, _ := datagen.Generate(cfg)
		victim := comm.Agents()[0]
		datagen.InjectSybils(comm, victim, 10, "urn:isbn:attack")
		rec, err := core.New(comm, core.Options{
			CF: cf.Options{Measure: cf.Cosine, Representation: cf.Taxonomy},
		})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := rec.Recommend(victim, 10); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E5: profile overlap fractions per representation ---

func benchOverlap(b *testing.B, repr cf.Representation) {
	comm := benchCommunity()
	ids := comm.Agents()
	if len(ids) > 40 {
		ids = ids[:40]
	}
	f, err := cf.New(comm, cf.Options{Measure: cf.Pearson, Representation: repr})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.DefinedPairFraction(ids)
	}
}

func BenchmarkE5OverlapProduct(b *testing.B)  { benchOverlap(b, cf.Product) }
func BenchmarkE5OverlapFlat(b *testing.B)     { benchOverlap(b, cf.FlatCategory) }
func BenchmarkE5OverlapTaxonomy(b *testing.B) { benchOverlap(b, cf.Taxonomy) }

// --- E6: scalability — full scan vs trust-prefiltered recommendation ---

func benchRecommend(b *testing.B, opt core.Options) {
	comm := benchCommunity()
	rec, err := core.New(comm, opt)
	if err != nil {
		b.Fatal(err)
	}
	active := benchActive()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rec.Recommend(active, 10); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE6FullScanCF(b *testing.B) {
	benchRecommend(b, core.Options{
		Metric:   core.NoTrust,
		AlphaSet: true,
		CF:       cf.Options{Measure: cf.Cosine, Representation: cf.Taxonomy},
	})
}

func BenchmarkE6TrustPrefiltered(b *testing.B) {
	benchRecommend(b, core.Options{
		Appleseed: trust.AppleseedOptions{MaxNodes: 150},
		CF:        cf.Options{Measure: cf.Cosine, Representation: cf.Taxonomy},
	})
}

// --- E7: full hybrid pipeline recommendation ---

func BenchmarkE7HybridRecommend(b *testing.B) {
	benchRecommend(b, core.Options{
		CF: cf.Options{Measure: cf.Cosine, Representation: cf.Taxonomy},
	})
}

func BenchmarkE7LeaveOneOutTrial(b *testing.B) {
	comm := benchCommunity()
	factory := func(c *model.Community) (*core.Recommender, error) {
		return core.New(c, core.Options{
			CF: cf.Options{Measure: cf.Cosine, Representation: cf.Taxonomy},
		})
	}
	rng := rand.New(rand.NewSource(1))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eval.LeaveOneOut(comm, factory, 10, 3, rng); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E8: taxonomy shape (deep vs broad profile generation) ---

func benchShapeProfile(b *testing.B, levels []int) {
	cfg := datagen.SmallScale()
	cfg.Taxonomy = datagen.TaxonomyConfig{Levels: levels, Root: "Books"}
	comm, _ := datagen.Generate(cfg)
	g := profile.New(comm.Taxonomy())
	a := comm.Agent(comm.Agents()[0])
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Profile(a, comm)
	}
}

func BenchmarkE8DeepTaxonomyProfile(b *testing.B)  { benchShapeProfile(b, []int{6, 6, 6, 6}) }
func BenchmarkE8BroadTaxonomyProfile(b *testing.B) { benchShapeProfile(b, []int{6, 216}) }

// --- E9: decentralized pipeline (publish → crawl) ---

func BenchmarkE9CrawlPipeline(b *testing.B) {
	cfg := datagen.SmallScale()
	cfg.Agents = 80
	cfg.Products = 100
	comm, _ := datagen.Generate(cfg)
	site := semweb.NewSite(cfg.BaseHost, comm)
	var in semweb.Internet
	in.RegisterSite(site)
	var seed model.AgentID
	deg := -1
	for _, id := range comm.Agents() {
		if d := len(comm.Agent(id).Trust); d > deg {
			deg = d
			seed = id
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cr := &crawler.Crawler{Client: in.Client()}
		if _, err := cr.Crawl(context.Background(), site.TaxonomyURL(), site.CatalogURL(),
			[]model.AgentID{seed}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablation benches (DESIGN.md §5) ---

func benchPropagationMode(b *testing.B, mode profile.Mode) {
	comm := benchCommunity()
	g := profile.New(comm.Taxonomy())
	g.Mode = mode
	a := comm.Agent(benchActive())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Profile(a, comm)
	}
}

func BenchmarkAblationPropagationEq3(b *testing.B)     { benchPropagationMode(b, profile.Eq3) }
func BenchmarkAblationPropagationUniform(b *testing.B) { benchPropagationMode(b, profile.Uniform) }
func BenchmarkAblationPropagationFlat(b *testing.B)    { benchPropagationMode(b, profile.Flat) }

func benchAppleseedBackprop(b *testing.B, noBackprop bool) {
	comm := benchCommunity()
	net := trust.FromCommunity(comm)
	src := benchActive()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := trust.Appleseed(net, src, trust.AppleseedOptions{
			MaxNodes: 200, NoBackprop: noBackprop,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationBackpropOn(b *testing.B)  { benchAppleseedBackprop(b, false) }
func BenchmarkAblationBackpropOff(b *testing.B) { benchAppleseedBackprop(b, true) }

func benchMeasure(b *testing.B, m cf.Measure) {
	comm := benchCommunity()
	f, err := cf.New(comm, cf.Options{Measure: m, Representation: cf.Taxonomy})
	if err != nil {
		b.Fatal(err)
	}
	ids := comm.Agents()
	a := benchActive()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.NearestNeighbors(a, ids, 10)
	}
}

func BenchmarkAblationMeasurePearson(b *testing.B) { benchMeasure(b, cf.Pearson) }
func BenchmarkAblationMeasureCosine(b *testing.B)  { benchMeasure(b, cf.Cosine) }

// --- Substrate micro-benches ---

func BenchmarkRDFHomepageMarshal(b *testing.B) {
	comm := benchCommunity()
	a := comm.Agent(benchActive())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		foaf.MarshalAgent(a)
	}
}

func BenchmarkRDFHomepageParse(b *testing.B) {
	comm := benchCommunity()
	doc := foaf.MarshalAgent(comm.Agent(benchActive())).Marshal()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g, err := rdf.ParseString(doc)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := foaf.Unmarshal(g); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDocumentStorePutGet(b *testing.B) {
	st, err := swrec.OpenDocumentStore(b.TempDir() + "/bench.log")
	if err != nil {
		b.Fatal(err)
	}
	defer st.Close()
	val := make([]byte, 512)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		key := "doc" + string(rune('a'+i%26))
		if err := st.Put(key, val); err != nil {
			b.Fatal(err)
		}
		if _, _, err := st.Get(key); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDatagenSmall(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		datagen.Generate(datagen.SmallScale())
	}
}

// --- E10: stereotype learning & classification ---

func BenchmarkE10StereotypeLearn(b *testing.B) {
	comm := benchCommunity()
	f, err := cf.New(comm, cf.Options{Representation: cf.Taxonomy})
	if err != nil {
		b.Fatal(err)
	}
	// Warm the profile cache once; learning cost is what we measure.
	for _, id := range comm.Agents() {
		f.ProfileOf(id)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := stereotype.Learn(comm.Agents(), f.ProfileOf, stereotype.Options{K: 6}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE10StereotypeClassify(b *testing.B) {
	comm := benchCommunity()
	f, err := cf.New(comm, cf.Options{Representation: cf.Taxonomy})
	if err != nil {
		b.Fatal(err)
	}
	m, err := stereotype.Learn(comm.Agents(), f.ProfileOf, stereotype.Options{K: 6})
	if err != nil {
		b.Fatal(err)
	}
	v := f.ProfileOf(benchActive())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Classify(v)
	}
}

// --- E11: topic diversification ---

func BenchmarkE11Diversify(b *testing.B) {
	comm := benchCommunity()
	rec, err := core.New(comm, core.Options{
		CF: cf.Options{Measure: cf.Cosine, Representation: cf.Taxonomy},
	})
	if err != nil {
		b.Fatal(err)
	}
	recs, err := rec.Recommend(benchActive(), 50)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec.Diversify(recs, 10, 0.5)
	}
}

// --- Ablation: graded distrust penalty ---

func benchDistrustPenalty(b *testing.B, gamma float64) {
	comm := benchCommunity()
	net := trust.FromCommunity(comm)
	src := benchActive()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := trust.Appleseed(net, src, trust.AppleseedOptions{
			MaxNodes: 200, DistrustPenalty: gamma,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationDistrustOff(b *testing.B)  { benchDistrustPenalty(b, 0) }
func BenchmarkAblationDistrustFull(b *testing.B) { benchDistrustPenalty(b, 1) }

// --- Ablation: content boost ---

func BenchmarkAblationContentBoost(b *testing.B) {
	benchRecommend(b, core.Options{
		CF:           cf.Options{Measure: cf.Cosine, Representation: cf.Taxonomy},
		ContentBoost: 1,
	})
}

// --- Substrates added for the §4 deployment path ---

func BenchmarkTurtleMarshal(b *testing.B) {
	comm := benchCommunity()
	g := foaf.MarshalAgent(comm.Agent(benchActive()))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.MarshalTurtle()
	}
}

func BenchmarkTurtleParse(b *testing.B) {
	comm := benchCommunity()
	doc := foaf.MarshalAgent(comm.Agent(benchActive())).MarshalTurtle()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rdf.ParseTurtle(doc); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWeblogRenderMine(b *testing.B) {
	comm := benchCommunity()
	a := comm.Agent(benchActive())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		doc := weblog.Render(a, comm)
		weblog.Mine(a.ID, doc)
	}
}

func BenchmarkPrecisionRecall(b *testing.B) {
	comm := benchCommunity()
	factory := func(c *model.Community) (*core.Recommender, error) {
		return core.New(c, core.Options{
			CF: cf.Options{Measure: cf.Cosine, Representation: cf.Taxonomy},
		})
	}
	rng := rand.New(rand.NewSource(2))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eval.PrecisionRecall(comm, factory, []int{5, 20}, 3, rng); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExperimentTables runs the fast experiments end to end (table
// generation included), guarding against regressions in the harness
// itself.
func BenchmarkExperimentTables(b *testing.B) {
	p := experiments.Params{Seed: 1, Scale: "small"}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.E1(io.Discard, p); err != nil {
			b.Fatal(err)
		}
	}
}
