// Package swrec is a decentralized, trust-aware recommender system for the
// Semantic Web — a reproduction of Cai-Nicolas Ziegler, "Semantic Web
// Recommender Systems", EDBT 2004 (PhD Workshop).
//
// The system combines two pillars:
//
//   - Trust networks (§3.2): agents publish partial trust functions in
//     machine-readable homepages; the Appleseed local group trust metric
//     (spreading activation) computes a subjective, continuous-valued
//     trust neighborhood per agent, providing both manipulation
//     resistance and scalable candidate pre-filtering. Levien's Advogato
//     (boolean, max-flow) and a scalar path metric are built in as
//     baselines.
//   - Taxonomy-driven interest profiles (§3.3): product ratings are
//     mapped onto a large product taxonomy (e.g. Amazon's >20,000-topic
//     book taxonomy) and propagated to super-topics with
//     sibling-attenuated scores (Eq. 3), so profile similarity (Pearson
//     or cosine) is meaningful even for users who share not a single
//     rated product.
//
// Rank synthesization (§3.4) merges trust and similarity ranks into one
// rank weight per peer, and peers vote for their appreciated products
// with that weight.
//
// # Quick start
//
//	comm, _ := swrec.GenerateCommunity(swrec.SmallDataset())
//	rec, err := swrec.NewRecommender(comm, swrec.Options{})
//	if err != nil { ... }
//	recs, err := rec.Recommend(comm.Agents()[0], 10)
//
// The package also ships the full decentralized loop: publish a community
// as FOAF/RDF homepages over HTTP (PublishSite), crawl it back into a
// local materialized view (Crawl), and recommend from the crawled data —
// see examples/decentralized.
//
// This root package is a thin facade; the subsystems live in internal/
// packages (see DESIGN.md for the full inventory).
package swrec

import (
	"context"
	"net/http"

	"swrec/internal/cf"
	"swrec/internal/core"
	"swrec/internal/corpus"
	"swrec/internal/crawler"
	"swrec/internal/datagen"
	"swrec/internal/engine"
	"swrec/internal/foaf"
	"swrec/internal/index"
	"swrec/internal/model"
	"swrec/internal/rdf"
	"swrec/internal/semweb"
	"swrec/internal/stereotype"
	"swrec/internal/store"
	"swrec/internal/taxonomy"
	"swrec/internal/trust"
	"swrec/internal/weblog"
)

// Core model types (§3.1 information model).
type (
	// AgentID is an agent's globally unique URI.
	AgentID = model.AgentID
	// ProductID is a product's globally unique identifier (e.g. an ISBN
	// URN).
	ProductID = model.ProductID
	// Product is one catalog entry with its topic descriptors f(b).
	Product = model.Product
	// Agent is one materialized agent: partial trust and rating functions.
	Agent = model.Agent
	// Community is the locally materialized view of the distributed model.
	Community = model.Community
	// TrustStatement is one trust edge.
	TrustStatement = model.TrustStatement
	// RatingStatement is one product rating.
	RatingStatement = model.RatingStatement
	// Taxonomy is the product classification scheme C.
	Taxonomy = taxonomy.Taxonomy
	// Topic is a handle into a Taxonomy.
	Topic = taxonomy.Topic
)

// Recommendation pipeline types.
type (
	// Options configure the recommendation pipeline (trust metric, CF
	// strategy, rank synthesization blend).
	Options = core.Options
	// CFOptions configure the similarity-based filtering stage.
	CFOptions = cf.Options
	// Recommendation is one recommended product.
	Recommendation = core.Recommendation
	// PeerRank is one peer after rank synthesization.
	PeerRank = core.PeerRank
	// Neighborhood is a computed trust neighborhood.
	Neighborhood = trust.Neighborhood
	// AppleseedOptions parameterize the Appleseed trust metric.
	AppleseedOptions = trust.AppleseedOptions
	// AdvogatoOptions parameterize the Advogato baseline metric.
	AdvogatoOptions = trust.AdvogatoOptions
)

// Trust metric selectors for Options.Metric.
const (
	// MetricAppleseed selects the paper's spreading-activation metric.
	MetricAppleseed = core.Appleseed
	// MetricAdvogato selects the boolean max-flow baseline.
	MetricAdvogato = core.Advogato
	// MetricPathTrust selects the scalar path-multiplication baseline.
	MetricPathTrust = core.PathTrust
	// MetricNone disables trust filtering (pure centralized CF).
	MetricNone = core.NoTrust
)

// Similarity measure selectors for CFOptions.Measure.
const (
	// MeasurePearson is Pearson's correlation coefficient.
	MeasurePearson = cf.Pearson
	// MeasureCosine is the cosine similarity.
	MeasureCosine = cf.Cosine
)

// Profile representation selectors for CFOptions.Representation.
const (
	// ReprTaxonomy uses Eq. 3 taxonomy profiles (the paper's proposal).
	ReprTaxonomy = cf.Taxonomy
	// ReprFlatCategory uses flat category vectors (baseline [14]).
	ReprFlatCategory = cf.FlatCategory
	// ReprProduct uses plain product-rating vectors (classic CF).
	ReprProduct = cf.Product
)

// Content mode selectors for Options.Content.
const (
	// ContentStandard votes over all unseen products.
	ContentStandard = core.Standard
	// ContentNovelCategories restricts to untouched taxonomy branches.
	ContentNovelCategories = core.NovelCategories
)

// Rank merge selectors for Options.Merge (§3.4 synthesization
// alternatives).
const (
	// MergeScoreBlend blends normalized trust and similarity values
	// (default; the empirically stronger scheme, see EXPERIMENTS.md E7).
	MergeScoreBlend = core.ScoreBlend
	// MergeBorda blends rank positions instead of values.
	MergeBorda = core.BordaCount
)

// Recommender is the assembled pipeline over one community view.
type Recommender = core.Recommender

// NewRecommender builds the full pipeline; the zero Options give the
// paper's default configuration (Appleseed + taxonomy-Pearson + α=0.5).
func NewRecommender(c *Community, opt Options) (*Recommender, error) {
	return core.New(c, opt)
}

// Engine is the persistent, concurrency-safe serving engine behind the
// HTTP API: one immutable community snapshot plus shared caches for
// taxonomy profiles, trust neighborhoods, and recommendation results,
// with an atomic Swap for publishing crawled updates (see
// internal/engine).
type Engine = engine.Engine

// EngineConfig sizes the engine's per-snapshot caches; the zero value
// selects defaults.
type EngineConfig = engine.Config

// NewEngine builds a serving engine over a community view. Long-running
// servers should prefer this over NewRecommender: repeated queries for
// the same agent are answered from caches, and Warmup precomputes every
// agent's hot state in parallel.
func NewEngine(c *Community, opt Options, cfg EngineConfig) (*Engine, error) {
	return engine.New(c, opt, cfg)
}

// NewCommunity creates an empty community over a taxonomy (which may be
// nil for pure trust-network use).
func NewCommunity(tax *Taxonomy) *Community { return model.NewCommunity(tax) }

// NewTaxonomy creates a taxonomy holding only the top element ⊤.
func NewTaxonomy(root string) *Taxonomy { return taxonomy.New(root) }

// Fig1Taxonomy reconstructs the paper's Figure 1 fragment of the Amazon
// book taxonomy (used by Example 1).
func Fig1Taxonomy() *Taxonomy { return taxonomy.Fig1() }

// Dataset generation (the §4.1 experimental infrastructure).
type (
	// DatasetConfig parameterizes synthetic community generation.
	DatasetConfig = datagen.Config
	// DatasetMeta carries generation ground truth (cluster assignments).
	DatasetMeta = datagen.Meta
)

// PaperDataset returns the configuration matching the paper's corpus:
// ≈9,100 agents, 9,953 books, a >20,000-topic book taxonomy.
func PaperDataset() DatasetConfig { return datagen.PaperScale() }

// SmallDataset returns a two-orders-of-magnitude smaller configuration
// for tests, examples, and quick experiments.
func SmallDataset() DatasetConfig { return datagen.SmallScale() }

// GenerateCommunity synthesizes a community (deterministic in cfg.Seed).
func GenerateCommunity(cfg DatasetConfig) (*Community, *DatasetMeta) {
	return datagen.Generate(cfg)
}

// InjectSybils adds profile-cloning attacker agents pushing a product —
// the §3.2 manipulation scenario used by experiment E4.
func InjectSybils(c *Community, victim AgentID, count int, push ProductID) []AgentID {
	return datagen.InjectSybils(c, victim, count, push)
}

// Decentralized deployment (§4): publishing and crawling.
type (
	// Site publishes a community as FOAF/RDF documents over HTTP.
	Site = semweb.Site
	// Internet is a virtual in-process network of sites.
	Internet = semweb.Internet
	// Crawler materializes a community from published homepages.
	Crawler = crawler.Crawler
	// CrawlResult is a materialized community plus crawl statistics.
	CrawlResult = crawler.Result
	// DocumentStore is the crawler's persistent document cache.
	DocumentStore = store.Store
	// Homepage is the logical content of one agent homepage document.
	Homepage = foaf.Homepage
)

// PublishSite wraps a community as an http.Handler serving per-agent
// homepages (/people/<name>), the catalog (/catalog.nt), and the taxonomy
// (/taxonomy.nt) under the given virtual host.
func PublishSite(host string, c *Community) *Site { return semweb.NewSite(host, c) }

// OpenDocumentStore opens (creating if needed) a crawler cache at path.
func OpenDocumentStore(path string) (*DocumentStore, error) {
	return store.Open(path, store.Options{})
}

// Crawl fetches the global taxonomy and catalog documents and BFS-crawls
// agent homepages from the seeds using the given client (pass
// (&Internet{}).Client() for a virtual web, or nil for the real one).
func Crawl(ctx context.Context, client *http.Client, taxonomyURL, catalogURL string, seeds []AgentID) (*CrawlResult, error) {
	c := &Crawler{Client: client}
	return c.Crawl(ctx, taxonomyURL, catalogURL, seeds)
}

// ExportCorpus writes the community to dir as a tree of Semantic Web
// documents (taxonomy.nt, catalog.nt, people/*.nt + MANIFEST).
func ExportCorpus(c *Community, dir string) error { return corpus.Export(c, dir) }

// ImportCorpus loads a corpus directory written by ExportCorpus.
func ImportCorpus(dir string) (*Community, error) { return corpus.Import(dir) }

// Stereotype learning (§6 "automated stereotype generation and efficient
// behavior modelling", implemented as an extension).
type (
	// StereotypeModel is a learned set of prototypical interest profiles.
	StereotypeModel = stereotype.Model
	// StereotypeOptions parameterize stereotype learning.
	StereotypeOptions = stereotype.Options
)

// LearnStereotypes clusters the community's taxonomy profiles into
// opt.K stereotypes (spherical k-means, deterministic given opt.Seed).
func LearnStereotypes(c *Community, opt StereotypeOptions) (*StereotypeModel, error) {
	f, err := cf.New(c, cf.Options{Representation: cf.Taxonomy})
	if err != nil {
		return nil, err
	}
	return stereotype.Learn(c.Agents(), f.ProfileOf, opt)
}

// TopicIndex answers browse-by-branch queries over the catalog (the
// inverse of the descriptor assignment f).
type TopicIndex = index.TopicIndex

// BuildTopicIndex indexes the community's catalog by taxonomy topic.
func BuildTopicIndex(c *Community) *TopicIndex { return index.Build(c) }

// RenderWeblog renders an agent's human-readable weblog page: posts
// whose hyperlinks to catalog product pages carry the implicit votes §4
// describes. The agent must exist in the community.
func RenderWeblog(c *Community, id AgentID) string {
	a := c.Agent(id)
	if a == nil {
		return ""
	}
	return weblog.Render(a, c)
}

// MineWeblog fetches a weblog page over HTTP, attributes it via its
// advertised FOAF homepage, and returns the implicit product votes mined
// from its hyperlinks (§4's All Consuming-style mining).
func MineWeblog(ctx context.Context, client *http.Client, url string) (AgentID, []RatingStatement, error) {
	return weblog.Fetch(ctx, client, url)
}

// MarshalHomepage renders an agent's homepage as an N-Triples document.
func MarshalHomepage(a *Agent) string { return foaf.MarshalAgent(a).Marshal() }

// ParseHomepage parses an N-Triples homepage document.
func ParseHomepage(doc string) (Homepage, error) {
	g, err := rdf.ParseString(doc)
	if err != nil {
		return Homepage{}, err
	}
	return foaf.Unmarshal(g)
}
