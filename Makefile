# swrec — standard development targets. The runtime is stdlib-only Go;
# the one external module is golang.org/x/tools (vendored), used at
# lint time only to build cmd/swrecvet on the go/analysis framework.

GO ?= go

.PHONY: all build check fmt vet lint lint-note lint-audit lint-urikey test race cover bench bench-diff bench-diff-short profile fuzz fuzz-smoke chaos chaos-short recovery-smoke load load-short load-baseline experiments experiments-paper examples clean

all: build check

# check is the CI gate: formatting, vet, the swrecvet invariant
# analyzers (lint runs before race so an invariant regression fails
# fast, without waiting out the race-detector suite), the full test
# suite under the race detector (the serving engine is exercised
# concurrently), a short fuzz smoke of the RDF parsers, the short-mode
# chaos suite, the checkpoint recovery smoke, a short benchmark-
# regression probe of the serving hot path, and the short production-
# load scenario with its adversarial trust attacks (see README "Load &
# attack harness").
check: fmt vet lint race fuzz-smoke chaos-short recovery-smoke bench-diff-short load-short

# bin/swrecvet is rebuilt only when an analyzer source changes, so a
# repeated `make lint` goes straight to the (vet-cached) analysis.
SWRECVET_SRC := $(shell find cmd/swrecvet internal/analysis -name '*.go' -not -path '*/testdata/*' -not -name '*_test.go')
bin/swrecvet: $(SWRECVET_SRC)
	$(GO) build -o bin/swrecvet ./cmd/swrecvet

# lint builds the swrecvet multichecker (only when its sources changed)
# and drives it through go vet, so the project analyzers (boundedmake,
# ctxflow, detrand, durableerr, expvarname, goleak, hotalloc,
# snapshotfreeze, snapshotpin, urikey) run with full type information.
# Narrow the sweep with PKG: `make lint PKG=./internal/engine/...`.
# See README "Static analysis" for the invariant each analyzer encodes
# and DESIGN.md §7 for the PR that introduced it.
PKG ?= ./...
lint: bin/swrecvet
	$(GO) vet -vettool=$(abspath bin/swrecvet) $(PKG)

# There is deliberately no auto-fix: every exception to an invariant
# must be written down where it lives, with a reason —
#   //nolint:<analyzer> -- reason            (one line)
#   //swrecvet:disable <analyzer> -- reason  (whole file)
# A suppression without the "-- reason" clause is inert and the
# diagnostic keeps firing. lint-note prints this workflow.
lint-note:
	@echo 'suppress a swrecvet finding where it occurs, with a justification:'
	@echo '  //nolint:<analyzer> -- reason             # covers its line and the next'
	@echo '  //swrecvet:disable <analyzer> -- reason   # covers the whole file'
	@echo 'unjustified suppressions are inert; the diagnostic keeps firing.'
	@echo 'mark zero-allocation kernels with //swrec:hotpath in the doc comment:'
	@echo '  hotalloc then rejects every allocating construct in the function'
	@echo '  and its same-package callees.'
	@echo 'narrow a lint run with PKG:   make lint PKG=./internal/engine/...'
	@echo 'audit stale suppressions:     make lint-audit'
	@echo 'assert zero URI-keyed maps:   make lint-urikey'

# lint-audit re-runs the suite in audit mode and condemns every
# justified suppression whose analyzer is gone or whose diagnostic no
# longer fires under it (see cmd/lintaudit). Fails when stale
# suppressions exist.
lint-audit: bin/swrecvet
	$(GO) run ./cmd/lintaudit -vettool bin/swrecvet

# lint-urikey asserts the interned data model holds: zero URI-string-
# keyed maps in the hot packages. The urikey analyzer is enforced in
# `make lint`; this target is the focused emptiness check CI runs (and
# the historical name of the baseline-regeneration target, kept so the
# burn-down workflow's muscle memory still works).
lint-urikey: bin/swrecvet
	@out=$$($(GO) vet -vettool=$(abspath bin/swrecvet) ./... 2>&1 \
		| grep 'map keyed by URI string' | sed 's|^$(CURDIR)/||' | sort); \
	if [ -n "$$out" ]; then \
		echo "$$out"; \
		echo 'lint-urikey: URI-string-keyed maps in hot packages (want none)'; \
		exit 1; \
	fi; \
	echo 'lint-urikey: no URI-string-keyed maps in hot packages'

build:
	$(GO) build ./...

fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

cover:
	$(GO) test -cover ./...

# bench runs the serving and write-path benchmarks and archives the
# results as JSON for cross-commit comparison.
bench:
	$(GO) test -run=^$$ -bench=. -benchmem \
		./internal/engine/ ./internal/wal/ ./internal/ingest/ ./internal/checkpoint/ ./internal/trust/ \
		| $(GO) run ./cmd/benchjson -out BENCH_engine.json

# bench-diff reruns the benchmark suite and fails when any benchmark
# regresses more than 20% in ns/op or allocs/op against the committed
# BENCH_engine.json baseline.
bench-diff:
	$(GO) test -run=^$$ -bench=. -benchmem \
		./internal/engine/ ./internal/wal/ ./internal/ingest/ ./internal/checkpoint/ ./internal/trust/ \
		| $(GO) run ./cmd/benchjson -diff BENCH_engine.json

# bench-diff-short is the quick form run as part of check: only the
# cold-path serving benchmark, few iterations, and a deliberately loose
# 100% threshold — at -benchtime=100x single-run noise reaches ~1.8x,
# while losing the compiled-substrate speedup shows as ~7x, so the gate
# catches that class of regression without flaking on scheduler jitter.
bench-diff-short:
	$(GO) test -run=^$$ -bench='BenchmarkServePerRequestNew$$' -benchmem -benchtime=100x \
		./internal/engine/ \
		| $(GO) run ./cmd/benchjson -diff BENCH_engine.json -threshold 1.0

# load-short runs the deterministic short load scenario (300 agents,
# 4000 mixed events, one Sybil ring) against an in-process server:
# swrecload itself fails on any SLO or attack-confinement violation,
# then benchjson gates the emitted metrics against the committed
# BENCH_load.json baseline. Latency keys get a loose 3.0 (4x) threshold
# — CI machines vary — while the deterministic metrics (error rates,
# energy shares, rank perturbations) gate on absolute drift.
load-short:
	@mkdir -p bin
	$(GO) build -o bin/swrecload ./cmd/swrecload
	./bin/swrecload -preset short -out bin/BENCH_load_short.json
	$(GO) run ./cmd/benchjson -in bin/BENCH_load_short.json -diff BENCH_load.json -threshold 3.0

# load is the full-scale run: 10⁵ agents, 2×10⁴ products on the book
# taxonomy, 60k open-loop events at 2000/s with Sybil, trust-spam, and
# shilling attacks injected (several minutes; generation dominates).
# Not part of check — run it before serving-path or trust-metric PRs.
load:
	@mkdir -p bin
	$(GO) build -o bin/swrecload ./cmd/swrecload
	./bin/swrecload -preset full -out bin/BENCH_load_full.json -slo=report -v

# load-baseline re-records the committed short-scenario baseline.
# Regenerate it deliberately (a latency-relevant change on a quiet
# machine), never to silence a failing gate.
load-baseline:
	@mkdir -p bin
	$(GO) build -o bin/swrecload ./cmd/swrecload
	./bin/swrecload -preset short -out BENCH_load.json

# profile captures CPU and allocation profiles of the cold-path serving
# benchmark into bin/ and prints the top-10 hotspots of each — the
# entry point for performance work (see README "Performance").
profile:
	@mkdir -p bin
	$(GO) test -run=^$$ -bench='BenchmarkServePerRequestNew$$' -benchtime=200x \
		-cpuprofile bin/cpu.prof -memprofile bin/mem.prof -o bin/engine.test ./internal/engine/
	$(GO) tool pprof -top -nodecount=10 bin/engine.test bin/cpu.prof
	$(GO) tool pprof -top -nodecount=10 -sample_index=alloc_space bin/engine.test bin/mem.prof

# chaos drives the crawl → ingest → serve pipeline under deterministic
# seed-driven transport and disk faults (internal/faultinject) and
# asserts no deadlock, no corrupted snapshot, and byte-identical WAL
# replay. Override the seed with CHAOS_SEED=N.
CHAOS_SEED ?= 1117
chaos:
	$(GO) test -run TestChaos -v ./internal/faultinject/ -chaos.seed=$(CHAOS_SEED)

# chaos-short is the scaled-down variant run as part of check.
chaos-short:
	$(GO) test -short -run TestChaos ./internal/faultinject/ -chaos.seed=$(CHAOS_SEED)

# recovery-smoke is the checkpoint restart gate run as part of check:
# build a corpus through the real ingest pipeline, write compiled
# checkpoints, corrupt the newest one, and require the recovery ladder
# to land on the previous retained checkpoint (rung 2) with the WAL
# tail replayed — a fall-through to corpus recompute (rung 4) fails.
recovery-smoke:
	$(GO) test -run 'TestRecoverySmoke|TestRestoredMatchesFromScratch' ./internal/checkpoint/

# Short fuzz pass over the RDF parsers (see internal/rdf/fuzz_test.go).
fuzz:
	$(GO) test -fuzz FuzzParseNTriples -fuzztime 30s ./internal/rdf/
	$(GO) test -fuzz FuzzParseTurtle -fuzztime 30s ./internal/rdf/
	$(GO) test -fuzz FuzzParseRDFXML -fuzztime 30s ./internal/rdf/
	$(GO) test -fuzz FuzzParseDocument -fuzztime 30s ./internal/rdf/

# fuzz-smoke is the 5-second-per-target variant run as part of check.
fuzz-smoke:
	$(GO) test -run=^$$ -fuzz FuzzParseNTriples -fuzztime 5s ./internal/rdf/
	$(GO) test -run=^$$ -fuzz FuzzParseTurtle -fuzztime 5s ./internal/rdf/
	$(GO) test -run=^$$ -fuzz FuzzParseRDFXML -fuzztime 5s ./internal/rdf/
	$(GO) test -run=^$$ -fuzz FuzzParseDocument -fuzztime 5s ./internal/rdf/

experiments:
	$(GO) run ./cmd/experiments

# The §4.1 corpus scale: 9,100 agents, 9,953 books, >20k topics (~25 min).
experiments-paper:
	$(GO) run ./cmd/experiments -scale paper | tee experiments_paper_output.txt

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/bookclub
	$(GO) run ./examples/trustnet
	$(GO) run ./examples/decentralized
	$(GO) run ./examples/stereotypes

clean:
	$(GO) clean ./...
