# swrec — standard development targets. Everything is stdlib Go; no
# external tools are required beyond the Go toolchain.

GO ?= go

.PHONY: all build check fmt vet test race cover bench fuzz experiments experiments-paper examples clean

all: build check

# check is the CI gate: formatting, vet, and the full test suite under
# the race detector (the serving engine is exercised concurrently).
check: fmt vet race

build:
	$(GO) build ./...

fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

cover:
	$(GO) test -cover ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Short fuzz pass over the RDF parsers (see internal/rdf/fuzz_test.go).
fuzz:
	$(GO) test -fuzz FuzzParseNTriples -fuzztime 30s ./internal/rdf/
	$(GO) test -fuzz FuzzParseTurtle -fuzztime 30s ./internal/rdf/
	$(GO) test -fuzz FuzzParseRDFXML -fuzztime 30s ./internal/rdf/
	$(GO) test -fuzz FuzzParseDocument -fuzztime 30s ./internal/rdf/

experiments:
	$(GO) run ./cmd/experiments

# The §4.1 corpus scale: 9,100 agents, 9,953 books, >20k topics (~25 min).
experiments-paper:
	$(GO) run ./cmd/experiments -scale paper | tee experiments_paper_output.txt

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/bookclub
	$(GO) run ./examples/trustnet
	$(GO) run ./examples/decentralized
	$(GO) run ./examples/stereotypes

clean:
	$(GO) clean ./...
