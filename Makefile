# swrec — standard development targets. Everything is stdlib Go; no
# external tools are required beyond the Go toolchain.

GO ?= go

.PHONY: all build check fmt vet test race cover bench fuzz fuzz-smoke chaos chaos-short experiments experiments-paper examples clean

all: build check

# check is the CI gate: formatting, vet, the full test suite under the
# race detector (the serving engine is exercised concurrently), a short
# fuzz smoke of the RDF parsers, and the short-mode chaos suite.
check: fmt vet race fuzz-smoke chaos-short

build:
	$(GO) build ./...

fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

cover:
	$(GO) test -cover ./...

# bench runs the serving and write-path benchmarks and archives the
# results as JSON for cross-commit comparison.
bench:
	$(GO) test -run=^$$ -bench=. -benchmem \
		./internal/engine/ ./internal/wal/ ./internal/ingest/ \
		| $(GO) run ./cmd/benchjson -out BENCH_engine.json

# chaos drives the crawl → ingest → serve pipeline under deterministic
# seed-driven transport and disk faults (internal/faultinject) and
# asserts no deadlock, no corrupted snapshot, and byte-identical WAL
# replay. Override the seed with CHAOS_SEED=N.
CHAOS_SEED ?= 1117
chaos:
	$(GO) test -run TestChaos -v ./internal/faultinject/ -chaos.seed=$(CHAOS_SEED)

# chaos-short is the scaled-down variant run as part of check.
chaos-short:
	$(GO) test -short -run TestChaos ./internal/faultinject/ -chaos.seed=$(CHAOS_SEED)

# Short fuzz pass over the RDF parsers (see internal/rdf/fuzz_test.go).
fuzz:
	$(GO) test -fuzz FuzzParseNTriples -fuzztime 30s ./internal/rdf/
	$(GO) test -fuzz FuzzParseTurtle -fuzztime 30s ./internal/rdf/
	$(GO) test -fuzz FuzzParseRDFXML -fuzztime 30s ./internal/rdf/
	$(GO) test -fuzz FuzzParseDocument -fuzztime 30s ./internal/rdf/

# fuzz-smoke is the 5-second-per-target variant run as part of check.
fuzz-smoke:
	$(GO) test -run=^$$ -fuzz FuzzParseNTriples -fuzztime 5s ./internal/rdf/
	$(GO) test -run=^$$ -fuzz FuzzParseTurtle -fuzztime 5s ./internal/rdf/
	$(GO) test -run=^$$ -fuzz FuzzParseRDFXML -fuzztime 5s ./internal/rdf/
	$(GO) test -run=^$$ -fuzz FuzzParseDocument -fuzztime 5s ./internal/rdf/

experiments:
	$(GO) run ./cmd/experiments

# The §4.1 corpus scale: 9,100 agents, 9,953 books, >20k topics (~25 min).
experiments-paper:
	$(GO) run ./cmd/experiments -scale paper | tee experiments_paper_output.txt

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/bookclub
	$(GO) run ./examples/trustnet
	$(GO) run ./examples/decentralized
	$(GO) run ./examples/stereotypes

clean:
	$(GO) clean ./...
